#include "core/shape_seq.hpp"

#include <sstream>
#include <unordered_set>

namespace swt {

ShapeSeq shape_sequence(Network& net) {
  ShapeSeq seq;
  for (const auto& p : net.params()) seq.push_back(p.value->shape());
  return seq;
}

ShapeSeq shape_sequence(const Checkpoint& ckpt) {
  ShapeSeq seq;
  seq.reserve(ckpt.tensors.size());
  for (const auto& t : ckpt.tensors) seq.push_back(t.value.shape());
  return seq;
}

namespace {

std::string layer_prefix(const std::string& name) {
  const auto pos = name.rfind('/');
  return pos == std::string::npos ? name : name.substr(0, pos);
}

}  // namespace

LayerGrouping group_layers(std::span<const std::string> names,
                           std::span<const Shape> shapes) {
  LayerGrouping g;
  for (std::size_t i = 0; i < names.size(); ++i) {
    const std::string prefix = layer_prefix(names[i]);
    if (g.prefixes.empty() || g.prefixes.back() != prefix) {
      g.prefixes.push_back(prefix);
      g.members.emplace_back();
      g.signatures.emplace_back();
    }
    g.members.back().push_back(i);
    g.signatures.back().push_back(shapes[i]);
  }
  return g;
}

LayerGrouping group_layers(Network& net) {
  std::vector<std::string> names;
  std::vector<Shape> shapes;
  for (const auto& p : net.params()) {
    names.push_back(p.name);
    shapes.push_back(p.value->shape());
  }
  return group_layers(names, shapes);
}

LayerGrouping group_layers(const Checkpoint& ckpt) {
  std::vector<std::string> names;
  std::vector<Shape> shapes;
  for (const auto& t : ckpt.tensors) {
    names.push_back(t.name);
    shapes.push_back(t.value.shape());
  }
  return group_layers(names, shapes);
}

SigSeq signature_sequence(Network& net) { return group_layers(net).signatures; }

SigSeq signature_sequence(const Checkpoint& ckpt) { return group_layers(ckpt).signatures; }

std::uint64_t hash_signature(const LayerSig& sig) noexcept {
  std::uint64_t h = 0x7b9d3f42c1e58a6dULL;
  for (const Shape& s : sig) h = mix64(h, hash_shape(s));
  return mix64(h, sig.size());
}

bool share_any_signature(const SigSeq& a, const SigSeq& b) {
  std::unordered_set<std::uint64_t> hashes;
  hashes.reserve(a.size());
  for (const auto& sig : a) hashes.insert(hash_signature(sig));
  for (const auto& sig : b) {
    if (!hashes.contains(hash_signature(sig))) continue;
    for (const auto& sa : a)
      if (sa == sig) return true;  // confirm (hash collisions)
  }
  return false;
}

bool share_any_shape(const ShapeSeq& a, const ShapeSeq& b) {
  std::unordered_set<std::uint64_t> hashes;
  hashes.reserve(a.size());
  for (const auto& s : a) hashes.insert(hash_shape(s));
  for (const auto& s : b) {
    if (!hashes.contains(hash_shape(s))) continue;
    for (const auto& sa : a)
      if (sa == s) return true;
  }
  return false;
}

std::string to_string(const ShapeSeq& seq) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i) os << ", ";
    os << seq[i].to_string();
  }
  os << ']';
  return os.str();
}

std::string to_string(const SigSeq& seq) {
  std::ostringstream os;
  os << '[';
  for (std::size_t i = 0; i < seq.size(); ++i) {
    if (i) os << ", ";
    os << '{';
    for (std::size_t j = 0; j < seq[i].size(); ++j) {
      if (j) os << ' ';
      os << seq[i][j].to_string();
    }
    os << '}';
  }
  os << ']';
  return os.str();
}

}  // namespace swt
