// Applying weight transfer (Section IV / Section VI step 4).
//
// Given a provider checkpoint and a freshly *initialised* receiver network,
// LP/LCS are computed over the two layer-signature sequences and every
// tensor of each matched layer is copied from provider to receiver;
// unmatched receiver layers keep their random initialisation.  This mirrors
// the evaluator pipeline in the paper: build child, read parent checkpoint,
// compute LP/LCS, initialise shared tensors from the parent.
#pragma once

#include "ckpt/checkpoint.hpp"
#include "core/match.hpp"
#include "nn/network.hpp"

namespace swt {

struct TransferStats {
  std::size_t provider_layers = 0;
  std::size_t receiver_layers = 0;
  std::size_t layers_matched = 0;
  std::size_t tensors_transferred = 0;
  std::size_t values_transferred = 0;  ///< total float elements copied
  double match_seconds = 0.0;          ///< LP/LCS computation wall time
  double copy_seconds = 0.0;           ///< weight copy wall time

  [[nodiscard]] bool any() const noexcept { return tensors_transferred > 0; }
};

/// Transfer provider weights into `receiver` under `mode`; returns what was
/// matched and how long the mechanism itself took (the paper reports this
/// overhead as <150 ms per training run at their scale).
TransferStats apply_transfer(const Checkpoint& provider, Network& receiver,
                             TransferMode mode);

/// Match-only variant used by the pair studies (Figs. 2, 4, 5): how many
/// layers WOULD transfer between two signature sequences under `mode`.
[[nodiscard]] std::size_t transferable_layers(const SigSeq& provider,
                                              const SigSeq& receiver, TransferMode mode);

}  // namespace swt
