#include "core/match.hpp"

#include <algorithm>
#include <stdexcept>

namespace swt {

const char* to_string(TransferMode m) noexcept {
  switch (m) {
    case TransferMode::kNone: return "baseline";
    case TransferMode::kLP: return "LP";
    case TransferMode::kLCS: return "LCS";
  }
  return "?";
}

namespace {

template <typename Token>
MatchPairs lp_match_impl(const std::vector<Token>& provider,
                         const std::vector<Token>& receiver) {
  MatchPairs pairs;
  const std::size_t n = std::min(provider.size(), receiver.size());
  for (std::size_t i = 0; i < n; ++i) {
    if (!(provider[i] == receiver[i])) break;
    pairs.emplace_back(i, i);
  }
  return pairs;
}

template <typename Token>
MatchPairs lcs_match_impl(const std::vector<Token>& provider,
                          const std::vector<Token>& receiver) {
  const std::size_t n = provider.size();
  const std::size_t m = receiver.size();
  if (n == 0 || m == 0) return {};

  // Wagner-Fischer DP table of LCS lengths; (n+1) x (m+1).
  std::vector<std::uint32_t> dp((n + 1) * (m + 1), 0);
  const auto at = [m](std::size_t i, std::size_t j) { return i * (m + 1) + j; };
  for (std::size_t i = 1; i <= n; ++i) {
    for (std::size_t j = 1; j <= m; ++j) {
      if (provider[i - 1] == receiver[j - 1])
        dp[at(i, j)] = dp[at(i - 1, j - 1)] + 1;
      else
        dp[at(i, j)] = std::max(dp[at(i - 1, j)], dp[at(i, j - 1)]);
    }
  }

  // Backtrack, preferring diagonal moves for a canonical alignment.
  MatchPairs pairs;
  pairs.reserve(dp[at(n, m)]);
  std::size_t i = n, j = m;
  while (i > 0 && j > 0) {
    if (provider[i - 1] == receiver[j - 1] && dp[at(i, j)] == dp[at(i - 1, j - 1)] + 1) {
      pairs.emplace_back(i - 1, j - 1);
      --i;
      --j;
    } else if (dp[at(i - 1, j)] >= dp[at(i, j - 1)]) {
      --i;
    } else {
      --j;
    }
  }
  std::reverse(pairs.begin(), pairs.end());
  return pairs;
}

template <typename Token>
MatchPairs match_impl(TransferMode mode, const std::vector<Token>& provider,
                      const std::vector<Token>& receiver) {
  switch (mode) {
    case TransferMode::kNone: return {};
    case TransferMode::kLP: return lp_match_impl(provider, receiver);
    case TransferMode::kLCS: return lcs_match_impl(provider, receiver);
  }
  throw std::logic_error("match: unknown transfer mode");
}

}  // namespace

MatchPairs lp_match(const ShapeSeq& provider, const ShapeSeq& receiver) {
  return lp_match_impl(provider, receiver);
}
MatchPairs lp_match(const SigSeq& provider, const SigSeq& receiver) {
  return lp_match_impl(provider, receiver);
}
MatchPairs lcs_match(const ShapeSeq& provider, const ShapeSeq& receiver) {
  return lcs_match_impl(provider, receiver);
}
MatchPairs lcs_match(const SigSeq& provider, const SigSeq& receiver) {
  return lcs_match_impl(provider, receiver);
}
MatchPairs match(TransferMode mode, const ShapeSeq& provider, const ShapeSeq& receiver) {
  return match_impl(mode, provider, receiver);
}
MatchPairs match(TransferMode mode, const SigSeq& provider, const SigSeq& receiver) {
  return match_impl(mode, provider, receiver);
}

}  // namespace swt
