#include "core/transfer.hpp"

#include <algorithm>

#include "common/timer.hpp"
#include "obs/metrics.hpp"

namespace swt {

namespace {

/// Per-mode match-time histogram (the LP-vs-LCS overhead split the paper
/// reports as "<150 ms per training run").
Histogram& match_seconds_histogram(TransferMode mode) {
  static Histogram& lp = metrics().histogram("transfer.match_seconds.LP");
  static Histogram& lcs = metrics().histogram("transfer.match_seconds.LCS");
  return mode == TransferMode::kLP ? lp : lcs;
}

}  // namespace

TransferStats apply_transfer(const Checkpoint& provider, Network& receiver,
                             TransferMode mode) {
  TransferStats stats;
  auto receiver_params = receiver.params();
  if (mode == TransferMode::kNone) return stats;

  WallTimer match_timer;
  const LayerGrouping provider_layers = group_layers(provider);
  const LayerGrouping receiver_layers = group_layers(receiver);
  stats.provider_layers = provider_layers.signatures.size();
  stats.receiver_layers = receiver_layers.signatures.size();
  const MatchPairs pairs =
      match(mode, provider_layers.signatures, receiver_layers.signatures);
  stats.match_seconds = match_timer.seconds();
  stats.layers_matched = pairs.size();

  WallTimer copy_timer;
  for (const auto& [pi, ri] : pairs) {
    const auto& src_members = provider_layers.members[pi];
    const auto& dst_members = receiver_layers.members[ri];
    // Matched signatures are identical, so member counts and shapes agree.
    for (std::size_t k = 0; k < src_members.size(); ++k) {
      const Tensor& src = provider.tensors[src_members[k]].value;
      Tensor& dst = *receiver_params[dst_members[k]].value;
      std::copy(src.values().begin(), src.values().end(), dst.values().begin());
      ++stats.tensors_transferred;
      stats.values_transferred += static_cast<std::size_t>(src.numel());
    }
  }
  stats.copy_seconds = copy_timer.seconds();

  if (metrics_enabled()) {
    MetricsRegistry& m = metrics();
    m.counter("transfer.applied_total").add();
    m.counter("transfer.tensors_total")
        .add(static_cast<std::int64_t>(stats.tensors_transferred));
    m.counter("transfer.bytes_total")
        .add(static_cast<std::int64_t>(stats.values_transferred * sizeof(float)));
    match_seconds_histogram(mode).observe(stats.match_seconds);
    m.histogram("transfer.copy_seconds").observe(stats.copy_seconds);
  }
  return stats;
}

std::size_t transferable_layers(const SigSeq& provider, const SigSeq& receiver,
                                TransferMode mode) {
  return match(mode, provider, receiver).size();
}

}  // namespace swt
