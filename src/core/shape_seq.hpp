// Shape sequences (Section IV-A).
//
// The paper casts tensor matching as string matching over "shape sequences":
// Fig. 3 depicts the sequence of *layer* tensor shapes, e.g.
// [(f, w, h), ..., (m, n)] — one token per parameterised layer, biases and
// batch-norm statistics travelling with their layer.  We therefore expose
// two granularities:
//
//   ShapeSeq — one token per parameter tensor (used by the matcher tests
//              and anywhere raw tensors are compared), and
//   SigSeq   — one token per layer, where a token (LayerSig) is the ordered
//              list of that layer's parameter shapes.  This is the paper's
//              matching granularity: two layers are transferable iff ALL
//              their parameter shapes agree, and matching a layer transfers
//              every one of its tensors (kernel + bias, BN's four, ...).
//
// Layers are recovered from parameter names: "t0/l3/W" and "t0/l3/b" share
// the layer prefix "t0/l3".
#pragma once

#include <span>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "nn/network.hpp"
#include "tensor/shape.hpp"

namespace swt {

using ShapeSeq = std::vector<Shape>;

/// One layer's parameter shapes, in declaration order.
using LayerSig = std::vector<Shape>;
using SigSeq = std::vector<LayerSig>;

/// Tensor-level sequence (every persisted parameter tensor, in order).
[[nodiscard]] ShapeSeq shape_sequence(Network& net);
[[nodiscard]] ShapeSeq shape_sequence(const Checkpoint& ckpt);

/// Layer grouping of a flat parameter list: which tensor indices belong to
/// which layer, and each layer's signature.
struct LayerGrouping {
  std::vector<std::string> prefixes;              ///< e.g. "t0/l3"
  std::vector<std::vector<std::size_t>> members;  ///< tensor indices per layer
  SigSeq signatures;
};

[[nodiscard]] LayerGrouping group_layers(std::span<const std::string> names,
                                         std::span<const Shape> shapes);
[[nodiscard]] LayerGrouping group_layers(Network& net);
[[nodiscard]] LayerGrouping group_layers(const Checkpoint& ckpt);

/// Layer-level sequence (the paper's shape sequence).
[[nodiscard]] SigSeq signature_sequence(Network& net);
[[nodiscard]] SigSeq signature_sequence(const Checkpoint& ckpt);

/// Fig. 2's "shareable" predicate at the paper's granularity: do the models
/// have at least one layer with an identical signature (order-insensitive)?
[[nodiscard]] bool share_any_signature(const SigSeq& a, const SigSeq& b);

/// Tensor-level variant kept for diagnostics.
[[nodiscard]] bool share_any_shape(const ShapeSeq& a, const ShapeSeq& b);

[[nodiscard]] std::string to_string(const ShapeSeq& seq);
[[nodiscard]] std::string to_string(const SigSeq& seq);

[[nodiscard]] std::uint64_t hash_signature(const LayerSig& sig) noexcept;

}  // namespace swt
