// LP and LCS matching (Section IV-A).
//
// Both heuristics return index pairs (provider_index, receiver_index) of
// identical tokens, strictly increasing in both coordinates:
//
//   LP  — longest common prefix: match tokens position-by-position from the
//         front until the first mismatch.  O(min(n, m)).  Motivated by the
//         transferability of early layers (Yosinski et al.).
//   LCS — longest common subsequence via Wagner-Fischer dynamic programming,
//         O(nm); handles layer insertions/deletions between provider and
//         receiver, so LCS always matches at least as many tokens as LP.
//
// Tokens come in two granularities (see shape_seq.hpp): raw tensor shapes
// (ShapeSeq) and per-layer signatures (SigSeq, the paper's granularity).
#pragma once

#include <cstddef>
#include <utility>
#include <vector>

#include "core/shape_seq.hpp"

namespace swt {

enum class TransferMode { kNone, kLP, kLCS };

[[nodiscard]] const char* to_string(TransferMode m) noexcept;

using MatchPairs = std::vector<std::pair<std::size_t, std::size_t>>;

[[nodiscard]] MatchPairs lp_match(const ShapeSeq& provider, const ShapeSeq& receiver);
[[nodiscard]] MatchPairs lp_match(const SigSeq& provider, const SigSeq& receiver);

/// When several LCS alignments exist, the backtrack prefers diagonal moves
/// (earliest consistent matches), giving a canonical deterministic alignment.
[[nodiscard]] MatchPairs lcs_match(const ShapeSeq& provider, const ShapeSeq& receiver);
[[nodiscard]] MatchPairs lcs_match(const SigSeq& provider, const SigSeq& receiver);

/// Dispatch on mode; kNone returns an empty match.
[[nodiscard]] MatchPairs match(TransferMode mode, const ShapeSeq& provider,
                               const ShapeSeq& receiver);
[[nodiscard]] MatchPairs match(TransferMode mode, const SigSeq& provider,
                               const SigSeq& receiver);

}  // namespace swt
