// Run health watchdog: turns the event stream into a liveness verdict.
//
// A live search can wedge in ways none of the existing instruments surface
// on their own: every worker stuck in crash-recovery loops, a PFS that
// fails every checkpoint write, an evaluator deadlock.  The watchdog
// subscribes to the EventBus, tracks the last wall time each worker (and
// the run as a whole) made progress, and classifies the run as
//
//   kIdle          no run started yet / run finished (healthy by default)
//   kOk            an eval completed recently
//   kStalled       run active but no evaluation completed for
//                  `stall_after_s` wall seconds
//   kCkptDegraded  more than `ckpt_retry_limit` checkpoint retries since
//                  the last completed evaluation (the PFS is failing faster
//                  than the search progresses)
//
// `/healthz` maps kStalled/kCkptDegraded to HTTP 503 with a JSON reason.
// Every state transition publishes the `health.*` gauge family and emits a
// `health_changed` NDJSON event, so an operator tailing the event log sees
// the degradation the moment a poll detects it.
//
// Split of responsibilities: on_event() (called under the bus lock) only
// records timestamps; poll() (called by the Sampler's tick hook and by
// every /healthz request) evaluates the state machine and performs the
// side effects.  poll() must therefore never run under the bus lock.
#pragma once

#include <mutex>
#include <string>
#include <vector>

#include "obs/events.hpp"

namespace swt {

class HealthWatchdog {
 public:
  struct Config {
    /// Wall seconds without a completed evaluation (while a run is active)
    /// before the run counts as stalled.
    double stall_after_s = 30.0;
    /// Checkpoint retries since the last completed evaluation before the
    /// run counts as checkpoint-degraded.
    long ckpt_retry_limit = 64;
  };

  enum class State { kIdle, kOk, kStalled, kCkptDegraded };

  explicit HealthWatchdog(Config cfg);
  HealthWatchdog();
  ~HealthWatchdog();

  HealthWatchdog(const HealthWatchdog&) = delete;
  HealthWatchdog& operator=(const HealthWatchdog&) = delete;

  /// Subscribe to `bus` (add_listener); detach() or destruction unsubscribes.
  void attach(EventBus& bus);
  void detach();

  /// Record one event (also invoked directly by tests).  Only bookkeeping —
  /// state evaluation happens in poll().
  void on_event(const Event& ev);

  /// Evaluate the state machine at the current wall time; on a transition,
  /// publish health.* gauges and emit a health_changed event on the
  /// attached bus.  Returns the (possibly new) state.
  State poll();

  [[nodiscard]] State state() const;
  /// Human-readable reason for a degraded state ("" when healthy).
  [[nodiscard]] std::string reason() const;
  [[nodiscard]] bool run_active() const;
  /// Wall seconds since the last completed evaluation (or run start);
  /// negative before any run started.
  [[nodiscard]] double seconds_since_progress() const;

  /// Per-worker view for /status, keyed by worker id.
  struct WorkerInfo {
    int worker = -1;
    bool busy = false;               ///< eval started but not finished
    double last_event_wall_s = 0.0;  ///< wall stamp of the last event seen
    long evals_finished = 0;
    long crashes = 0;
  };
  [[nodiscard]] std::vector<WorkerInfo> workers() const;

  [[nodiscard]] static const char* to_string(State s) noexcept;

 private:
  [[nodiscard]] State evaluate(double now_wall_s, std::string* why) const;

  Config cfg_;
  mutable std::mutex mutex_;
  EventBus* bus_ = nullptr;
  int listener_id_ = 0;
  State state_ = State::kIdle;
  std::string reason_;
  bool run_active_ = false;
  bool run_seen_ = false;
  double last_progress_wall_s_ = 0.0;  ///< last eval_finished (or run start)
  long ckpt_retries_since_progress_ = 0;
  long evals_finished_ = 0;
  std::vector<WorkerInfo> workers_;
};

}  // namespace swt
