// Process-wide metrics: counters, gauges and fixed-bucket histograms.
//
// The paper's headline claim is speedup "at low and scalable overhead"; to
// measure that, every hot path (training steps, LP/LCS matching, checkpoint
// I/O, scheduler bookkeeping) reports into one registry that can be
// snapshotted at the end of a run and serialized as JSON/CSV.  Updates are
// single relaxed atomic operations so instrumentation stays cheap enough to
// leave on under `thread_pool` concurrency; `set_metrics_enabled(false)`
// turns every update into a branch-only no-op (what bench_overhead compares
// against).  Registration (name -> instrument) takes a mutex once; the
// returned references stay valid for the registry's lifetime, so call sites
// can cache them.
#pragma once

#include <atomic>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <string_view>
#include <vector>

namespace swt {

/// Runtime kill-switch for every instrument (default: enabled).  Disabled
/// instruments still exist and read back their old values; they just stop
/// accumulating.
void set_metrics_enabled(bool on) noexcept;
[[nodiscard]] bool metrics_enabled() noexcept;

/// Monotonic integer count (events, bytes, retries, ...).
class Counter {
 public:
  void add(std::int64_t n = 1) noexcept {
    if (metrics_enabled()) v_.fetch_add(n, std::memory_order_relaxed);
  }
  [[nodiscard]] std::int64_t value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0, std::memory_order_relaxed); }

 private:
  std::atomic<std::int64_t> v_{0};
};

/// Last-value or accumulated double (queue depths, seconds totals, ...).
class Gauge {
 public:
  void set(double v) noexcept {
    if (metrics_enabled()) v_.store(v, std::memory_order_relaxed);
  }
  /// Atomic accumulate (CAS loop); used for double-valued totals such as
  /// busy/idle seconds that a Counter's integer domain cannot hold.
  void add(double delta) noexcept;
  [[nodiscard]] double value() const noexcept {
    return v_.load(std::memory_order_relaxed);
  }
  void reset() noexcept { v_.store(0.0, std::memory_order_relaxed); }

 private:
  std::atomic<double> v_{0.0};
};

/// Fixed-bucket histogram with quantile estimates.
///
/// `bounds` are inclusive bucket upper edges, strictly increasing; one
/// overflow bucket is appended internally.  observe() is one bucket scan
/// plus atomic increments, safe from any thread.  Quantiles are estimated
/// by linear interpolation inside the bucket that crosses the requested
/// rank (Prometheus-style), clamped to the observed min/max.
///
/// Concurrent-scrape contract (the /metrics endpoint reads while 8+ threads
/// update): every individual load is atomic, so no value is ever torn, and
/// observe() publishes the bucket increment *before* the total count
/// (release) while count() reads with acquire — a reader that loads
/// count() first and bucket_counts() second (snapshot() does) is guaranteed
/// sum(buckets) >= count, i.e. the scrape never reports an observation in
/// the total that is missing from its bucket.  Cross-field aggregates
/// (sum vs count) may still lag each other by in-flight observations;
/// scrapes are monotone, not serialized.
class Histogram {
 public:
  explicit Histogram(std::vector<double> bounds = {});

  void observe(double v) noexcept;

  [[nodiscard]] std::uint64_t count() const noexcept {
    // Acquire pairs with the release add in observe(): bucket increments of
    // every counted observation are visible to subsequent bucket loads.
    return count_.load(std::memory_order_acquire);
  }
  [[nodiscard]] double sum() const noexcept {
    return sum_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] double min() const noexcept;  ///< 0 when empty
  [[nodiscard]] double max() const noexcept;  ///< 0 when empty
  [[nodiscard]] double mean() const noexcept;
  [[nodiscard]] double quantile(double q) const;  ///< q in [0, 1]

  [[nodiscard]] const std::vector<double>& bounds() const noexcept { return bounds_; }
  /// bounds().size() + 1 entries; the last is the overflow bucket.
  [[nodiscard]] std::vector<std::uint64_t> bucket_counts() const;
  void reset() noexcept;

  /// Log-spaced 1-2-5 edges from 1 microsecond to 1000 seconds — a scale
  /// that covers every duration this codebase measures.
  [[nodiscard]] static std::vector<double> default_seconds_bounds();

 private:
  std::vector<double> bounds_;
  std::unique_ptr<std::atomic<std::uint64_t>[]> counts_;
  std::atomic<std::uint64_t> count_{0};
  std::atomic<double> sum_{0.0};
  std::atomic<double> min_;
  std::atomic<double> max_;
};

struct HistogramSnapshot {
  std::uint64_t count = 0;
  double sum = 0.0;
  double min = 0.0;
  double max = 0.0;
  double p50 = 0.0;
  double p90 = 0.0;
  double p99 = 0.0;
  std::vector<double> bounds;
  std::vector<std::uint64_t> counts;  ///< bounds.size() + 1 (overflow last)
};

struct MetricsSnapshot {
  std::map<std::string, std::int64_t> counters;
  std::map<std::string, double> gauges;
  std::map<std::string, HistogramSnapshot> histograms;

  [[nodiscard]] bool empty() const noexcept {
    return counters.empty() && gauges.empty() && histograms.empty();
  }
};

/// Name -> instrument registry.  get-or-create is mutex-guarded; the
/// returned references are stable for the registry's lifetime.
class MetricsRegistry {
 public:
  [[nodiscard]] Counter& counter(std::string_view name);
  [[nodiscard]] Gauge& gauge(std::string_view name);
  /// `bounds` applies only on first registration of `name`.
  [[nodiscard]] Histogram& histogram(std::string_view name,
                                     std::vector<double> bounds = {});

  [[nodiscard]] MetricsSnapshot snapshot() const;
  /// Counters (as double) and gauges only — no histogram quantile work.
  /// The time-series Sampler's read path: cheap enough for a 4 Hz loop.
  [[nodiscard]] std::map<std::string, double> scalar_values() const;
  /// Zero every instrument's value; registrations (and cached references)
  /// survive.  Used between bench repetitions and by tests.
  void reset();

 private:
  mutable std::mutex mutex_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

/// The process-wide registry every built-in instrumentation point reports to.
[[nodiscard]] MetricsRegistry& metrics();

/// Serialize a snapshot as JSON ({"counters": {...}, "gauges": {...},
/// "histograms": {...}}) or as CSV (name,kind,value rows with histogram
/// aggregates expanded).
void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap);
void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap);

/// Render a snapshot in OpenMetrics text exposition format (the
/// `GET /metrics` payload): `# TYPE` lines per family, counter samples
/// suffixed `_total`, histograms expanded into cumulative `_bucket{le=...}`
/// samples plus `_sum`/`_count`, terminated by `# EOF`.  Metric names are
/// sanitized to [a-zA-Z0-9_:] (dots become underscores).  Non-finite values
/// render as NaN/+Inf/-Inf per the spec.
void write_metrics_openmetrics(std::ostream& os, const MetricsSnapshot& snap);

/// OpenMetrics-safe name: invalid characters replaced by '_', leading
/// digit prefixed.
[[nodiscard]] std::string openmetrics_name(std::string_view name);

}  // namespace swt
