#include "obs/span_tracer.hpp"

#include <chrono>
#include <fstream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"

namespace swt {

namespace {

std::chrono::steady_clock::time_point trace_epoch() {
  static const std::chrono::steady_clock::time_point epoch =
      std::chrono::steady_clock::now();
  return epoch;
}

/// Escaped and quoted — a complete JSON string fragment for TraceEvent args.
/// Built with append (not operator+) to dodge GCC 12's -Wrestrict false
/// positive on chained string concatenation (GCC PR 105651).
std::string quoted(std::string_view s) {
  std::string out;
  out.reserve(s.size() + 2);
  out += '"';
  out += json_escape(s);
  out += '"';
  return out;
}

}  // namespace

void SpanTracer::record(TraceEvent ev) {
  if (!enabled()) return;
  std::scoped_lock lock(mutex_);
  events_.push_back(std::move(ev));
}

void SpanTracer::complete(std::string name, std::string cat, int pid, int tid,
                          double ts_us, double dur_us,
                          std::vector<std::pair<std::string, std::string>> args) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = std::move(cat);
  ev.ph = 'X';
  ev.ts_us = ts_us;
  ev.dur_us = dur_us;
  ev.pid = pid;
  ev.tid = tid;
  ev.args = std::move(args);
  record(std::move(ev));
}

void SpanTracer::counter(std::string name, int pid, double ts_us, double value) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = std::move(name);
  ev.cat = "counter";
  ev.ph = 'C';
  ev.ts_us = ts_us;
  ev.pid = pid;
  ev.args.emplace_back("value", json_number(value));
  record(std::move(ev));
}

void SpanTracer::name_process(int pid, const std::string& name) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = "process_name";
  ev.ph = 'M';
  ev.pid = pid;
  ev.args.emplace_back("name", quoted(name));
  record(std::move(ev));
}

void SpanTracer::name_track(int pid, int tid, const std::string& name) {
  if (!enabled()) return;
  TraceEvent ev;
  ev.name = "thread_name";
  ev.ph = 'M';
  ev.pid = pid;
  ev.tid = tid;
  ev.args.emplace_back("name", quoted(name));
  record(std::move(ev));
}

std::vector<TraceEvent> SpanTracer::events() const {
  std::scoped_lock lock(mutex_);
  return events_;
}

std::size_t SpanTracer::size() const {
  std::scoped_lock lock(mutex_);
  return events_.size();
}

void SpanTracer::clear() {
  std::scoped_lock lock(mutex_);
  events_.clear();
}

SpanTracer& SpanTracer::global() {
  static SpanTracer tracer;
  return tracer;
}

double SpanTracer::wall_now_us() noexcept {
  return std::chrono::duration<double, std::micro>(std::chrono::steady_clock::now() -
                                                   trace_epoch())
      .count();
}

int SpanTracer::this_thread_tid() {
  static std::atomic<int> next_tid{1};
  thread_local const int tid = next_tid.fetch_add(1, std::memory_order_relaxed);
  return tid;
}

ScopedSpan::ScopedSpan(std::string name, std::string cat, SpanTracer& tracer)
    : tracer_(&tracer), name_(std::move(name)), cat_(std::move(cat)) {
  active_ = tracer_->enabled();
  if (active_) start_us_ = SpanTracer::wall_now_us();
}

ScopedSpan::~ScopedSpan() {
  if (!active_) return;
  const double end_us = SpanTracer::wall_now_us();
  tracer_->complete(std::move(name_), std::move(cat_), kTraceWallPid,
                    SpanTracer::this_thread_tid(), start_us_, end_us - start_us_);
}

void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events) {
  os << "{\"displayTimeUnit\": \"ms\", \"traceEvents\": [";
  bool first = true;
  for (const TraceEvent& ev : events) {
    os << (first ? "\n" : ",\n") << "{\"name\": \"" << json_escape(ev.name)
       << "\", \"cat\": \"" << json_escape(ev.cat) << "\", \"ph\": \"" << ev.ph
       << "\", \"ts\": " << json_number(ev.ts_us) << ", \"pid\": " << ev.pid
       << ", \"tid\": " << ev.tid;
    if (ev.ph == 'X') os << ", \"dur\": " << json_number(ev.dur_us);
    if (!ev.args.empty()) {
      os << ", \"args\": {";
      bool first_arg = true;
      for (const auto& [key, raw_json] : ev.args) {
        os << (first_arg ? "" : ", ") << "\"" << json_escape(key) << "\": " << raw_json;
        first_arg = false;
      }
      os << "}";
    }
    os << "}";
    first = false;
  }
  os << "\n]}\n";
}

void write_trace_json(const std::string& path, const std::vector<TraceEvent>& events) {
  std::ofstream out(path, std::ios::trunc);
  if (!out) throw std::runtime_error("write_trace_json: cannot open " + path);
  write_trace_json(out, events);
  if (!out) throw std::runtime_error("write_trace_json: short write to " + path);
}

std::vector<TraceEvent> read_trace_json(std::istream& is) {
  std::ostringstream buffer;
  buffer << is.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  const JsonValue& list = doc.is_array() ? doc : doc.at("traceEvents");
  if (!list.is_array())
    throw std::runtime_error("read_trace_json: no traceEvents array");

  std::vector<TraceEvent> events;
  events.reserve(list.array.size());
  for (const JsonValue& e : list.array) {
    if (!e.is_object()) throw std::runtime_error("read_trace_json: event is not an object");
    TraceEvent ev;
    ev.name = e.string_or("name", "");
    ev.cat = e.string_or("cat", "");
    const std::string ph = e.string_or("ph", "X");
    ev.ph = ph.empty() ? 'X' : ph[0];
    ev.ts_us = e.number_or("ts", 0.0);
    ev.dur_us = e.number_or("dur", 0.0);
    ev.pid = static_cast<int>(e.number_or("pid", 0.0));
    ev.tid = static_cast<int>(e.number_or("tid", 0.0));
    const JsonValue& args = e.at("args");
    if (args.is_object()) {
      for (const auto& [key, value] : args.object) {
        std::string raw;
        switch (value.kind) {
          case JsonValue::Kind::kNumber: raw = json_number(value.number); break;
          case JsonValue::Kind::kString:
            raw = quoted(value.string);
            break;
          case JsonValue::Kind::kBool: raw = value.boolean ? "true" : "false"; break;
          default: raw = "null";
        }
        ev.args.emplace_back(key, std::move(raw));
      }
    }
    events.push_back(std::move(ev));
  }
  return events;
}

std::vector<TraceEvent> read_trace_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("read_trace_json: cannot open " + path);
  return read_trace_json(in);
}

}  // namespace swt
