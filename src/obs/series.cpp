#include "obs/series.hpp"

#include <algorithm>
#include <array>
#include <istream>
#include <ostream>
#include <sstream>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace swt {

TimeSeriesStore::TimeSeriesStore(std::size_t capacity) : capacity_(capacity) {
  if (capacity_ < 2)
    throw std::invalid_argument("TimeSeriesStore: capacity must be >= 2");
}

void TimeSeriesStore::append(std::string_view name, SeriesPoint p) {
  std::scoped_lock lock(mutex_);
  auto it = series_.find(name);
  if (it == series_.end()) {
    it = series_.emplace(std::string(name), Ring{}).first;
    it->second.buf.reserve(capacity_);
  }
  Ring& ring = it->second;
  if (ring.buf.size() < capacity_) {
    ring.buf.push_back(p);
  } else {
    ring.buf[ring.next] = p;
    ++dropped_;
  }
  ring.next = (ring.next + 1) % capacity_;
  ++ring.total;
}

std::vector<std::string> TimeSeriesStore::names() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(series_.size());
  for (const auto& [name, ring] : series_) out.push_back(name);
  return out;
}

std::vector<SeriesPoint> TimeSeriesStore::points(std::string_view name) const {
  std::scoped_lock lock(mutex_);
  const auto it = series_.find(name);
  if (it == series_.end()) return {};
  const Ring& ring = it->second;
  std::vector<SeriesPoint> out;
  out.reserve(ring.buf.size());
  if (ring.buf.size() < capacity_) {
    out = ring.buf;  // not yet wrapped: insertion order is chronological
  } else {
    for (std::size_t i = 0; i < capacity_; ++i)
      out.push_back(ring.buf[(ring.next + i) % capacity_]);
  }
  return out;
}

std::vector<SeriesPoint> TimeSeriesStore::window(std::string_view name,
                                                 std::size_t max_points) const {
  std::vector<SeriesPoint> all = points(name);
  if (max_points == 0 || all.size() <= max_points) return all;
  // Even stride over the retained range, pinned to the newest point so the
  // live edge is always visible.
  std::vector<SeriesPoint> out;
  out.reserve(max_points);
  const double stride =
      static_cast<double>(all.size() - 1) / static_cast<double>(max_points - 1);
  for (std::size_t i = 0; i + 1 < max_points; ++i)
    out.push_back(all[static_cast<std::size_t>(static_cast<double>(i) * stride)]);
  out.push_back(all.back());
  return out;
}

std::uint64_t TimeSeriesStore::total_appended(std::string_view name) const {
  std::scoped_lock lock(mutex_);
  const auto it = series_.find(name);
  return it == series_.end() ? 0 : it->second.total;
}

std::uint64_t TimeSeriesStore::dropped() const {
  std::scoped_lock lock(mutex_);
  return dropped_;
}

void TimeSeriesStore::clear() {
  std::scoped_lock lock(mutex_);
  series_.clear();
  dropped_ = 0;
}

void write_series_csv(std::ostream& os, const TimeSeriesStore& store) {
  os << "series,wall_s,virtual_s,value\n";
  for (const std::string& name : store.names())
    for (const SeriesPoint& p : store.points(name))
      os << name << ',' << json_number(p.wall_s) << ',' << json_number(p.virtual_s)
         << ',' << json_number(p.value) << '\n';
}

void read_series_csv(std::istream& is, TimeSeriesStore& store) {
  std::string line;
  long line_no = 0;
  while (std::getline(is, line)) {
    ++line_no;
    if (line_no == 1) {
      if (line.rfind("series,wall_s", 0) != 0)
        throw std::runtime_error("series CSV: unexpected header: " + line);
      continue;
    }
    if (line.empty()) continue;
    std::array<std::string, 4> cell;
    std::size_t col = 0, start = 0;
    for (std::size_t i = 0; i <= line.size(); ++i) {
      if (i == line.size() || line[i] == ',') {
        if (col >= cell.size())
          throw std::runtime_error("series CSV line " + std::to_string(line_no) +
                                   ": too many columns");
        cell[col++] = line.substr(start, i - start);
        start = i + 1;
      }
    }
    if (col != cell.size())
      throw std::runtime_error("series CSV line " + std::to_string(line_no) +
                               ": expected 4 columns, got " + std::to_string(col));
    try {
      store.append(cell[0], SeriesPoint{std::stod(cell[1]), std::stod(cell[2]),
                                        // "null" marks a non-finite sample
                                        cell[3] == "null" ? 0.0 : std::stod(cell[3])});
    } catch (const std::exception&) {
      throw std::runtime_error("series CSV line " + std::to_string(line_no) +
                               ": malformed number in: " + line);
    }
  }
}

std::string series_to_json(std::string_view name, const std::vector<SeriesPoint>& pts,
                           std::uint64_t total) {
  std::string out = "{\"name\":\"";
  out += json_escape(name);
  out += "\",\"total\":";
  out += std::to_string(total);
  out += ",\"points\":[";
  for (std::size_t i = 0; i < pts.size(); ++i) {
    if (i != 0) out += ',';
    out += '[';
    out += json_number(pts[i].wall_s);
    out += ',';
    out += json_number(pts[i].virtual_s);
    out += ',';
    out += json_number(pts[i].value);
    out += ']';
  }
  out += "]}";
  return out;
}

Sampler::Sampler(TimeSeriesStore& store, MetricsRegistry& registry, Config cfg)
    : store_(store), registry_(registry), cfg_(std::move(cfg)) {
  if (cfg_.interval.count() <= 0)
    throw std::invalid_argument("Sampler: interval must be positive");
}

Sampler::Sampler(TimeSeriesStore& store, MetricsRegistry& registry)
    : Sampler(store, registry, Config()) {}

Sampler::~Sampler() { stop(); }

void Sampler::start() {
  std::scoped_lock lock(mutex_);
  if (thread_.joinable()) return;  // already running
  stop_requested_ = false;
  running_.store(true, std::memory_order_relaxed);
  thread_ = std::thread([this] { loop(); });
}

void Sampler::stop() {
  {
    std::scoped_lock lock(mutex_);
    if (!thread_.joinable()) return;
    stop_requested_ = true;
  }
  cv_.notify_all();
  thread_.join();
  thread_ = std::thread{};
  running_.store(false, std::memory_order_relaxed);
}

void Sampler::tick() {
  const double wall_s = SpanTracer::wall_now_us() / 1e6;
  const auto scalars = registry_.scalar_values();
  double virtual_s = -1.0;
  const auto vt = scalars.find(cfg_.virtual_time_gauge);
  if (vt != scalars.end() && vt->second > 0.0) virtual_s = vt->second;
  for (const auto& [name, value] : scalars) {
    if (!cfg_.prefixes.empty() &&
        std::none_of(cfg_.prefixes.begin(), cfg_.prefixes.end(),
                     [&name = name](const std::string& p) {
                       return name.rfind(p, 0) == 0;
                     }))
      continue;
    store_.append(name, SeriesPoint{wall_s, virtual_s, value});
  }
  ticks_.fetch_add(1, std::memory_order_relaxed);
  if (on_tick_) on_tick_();
}

void Sampler::loop() {
  std::unique_lock lock(mutex_);
  while (!stop_requested_) {
    lock.unlock();
    tick();
    lock.lock();
    cv_.wait_for(lock, cfg_.interval, [this] { return stop_requested_; });
  }
}

}  // namespace swt
