#include "obs/quality.hpp"

#include <cmath>

#include "obs/metrics.hpp"

namespace swt {

void IncrementalKendall::add(double x, double y) {
  if (max_points_ != 0 && points_.size() >= max_points_) return;
  for (const auto& [px, py] : points_) {
    const double dx = x - px;
    const double dy = y - py;
    if (dx == 0.0 || dy == 0.0) continue;  // ties count for neither
    if ((dx > 0.0) == (dy > 0.0))
      ++concordant_;
    else
      ++discordant_;
  }
  points_.emplace_back(x, y);
}

double IncrementalKendall::tau() const noexcept {
  const auto n = static_cast<long long>(points_.size());
  if (n < 2) return 0.0;
  const auto pairs = n * (n - 1) / 2;
  return static_cast<double>(concordant_ - discordant_) / static_cast<double>(pairs);
}

QualityTelemetry::QualityTelemetry(Config cfg)
    : cfg_(cfg), kendall_(cfg.kendall_max_points) {}

bool QualityTelemetry::observe(const QualityObservation& obs) {
  ++evals_;
  if (obs.transferred) ++transfer_hits_;
  if (obs.transfer_fallback) ++transfer_fallbacks_;

  // Lineage depth: 1 from scratch, 1 + depth(parent) when weights actually
  // moved (same rule as the post-hoc lineage_depths in exp/analysis).
  int depth = 1;
  if (obs.transferred) {
    const auto it = depth_by_id_.find(obs.parent_id);
    depth = (it != depth_by_id_.end() ? it->second : 1) + 1;
  }
  depth_by_id_.emplace(obs.eval_id, depth);
  ++lineage_hist_[depth];
  depth_sum_ += depth;
  max_depth_ = std::max(max_depth_, depth);

  window_.push_back(obs.score);
  if (window_.size() > cfg_.dispersion_window) window_.pop_front();

  kendall_.add(obs.first_epoch_score, obs.score);

  const bool improved = !has_best_ || obs.score > best_score_;
  if (improved) {
    has_best_ = true;
    best_score_ = obs.score;
  }
  publish_gauges();
  if (metrics_enabled())
    metrics().histogram("quality.lineage_depth", {1, 2, 3, 5, 8, 13, 21, 34})
        .observe(static_cast<double>(depth));
  return improved;
}

double QualityTelemetry::transfer_hit_rate() const noexcept {
  return evals_ == 0 ? 0.0 : static_cast<double>(transfer_hits_) / static_cast<double>(evals_);
}

double QualityTelemetry::transfer_fallback_rate() const noexcept {
  return evals_ == 0 ? 0.0
                     : static_cast<double>(transfer_fallbacks_) / static_cast<double>(evals_);
}

double QualityTelemetry::mean_lineage_depth() const noexcept {
  return evals_ == 0 ? 0.0 : static_cast<double>(depth_sum_) / static_cast<double>(evals_);
}

double QualityTelemetry::score_dispersion() const noexcept {
  const std::size_t n = window_.size();
  if (n < 2) return 0.0;
  double mean = 0.0;
  for (const double s : window_) mean += s;
  mean /= static_cast<double>(n);
  double m2 = 0.0;
  for (const double s : window_) m2 += (s - mean) * (s - mean);
  return std::sqrt(m2 / static_cast<double>(n - 1));
}

void QualityTelemetry::publish_gauges() const {
  if (!metrics_enabled()) return;
  MetricsRegistry& m = metrics();
  m.gauge("quality.best_score").set(best_score_);
  m.gauge("quality.transfer_hit_rate").set(transfer_hit_rate());
  m.gauge("quality.transfer_fallback_rate").set(transfer_fallback_rate());
  m.gauge("quality.mean_lineage_depth").set(mean_lineage_depth());
  m.gauge("quality.score_dispersion").set(score_dispersion());
  m.gauge("quality.kendall_tau_early_final").set(kendall_.tau());
}

}  // namespace swt
