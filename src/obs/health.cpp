#include "obs/health.hpp"

#include <algorithm>
#include <stdexcept>

#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/span_tracer.hpp"

namespace swt {

HealthWatchdog::HealthWatchdog(Config cfg) : cfg_(cfg) {
  if (cfg_.stall_after_s <= 0.0)
    throw std::invalid_argument("HealthWatchdog: stall_after_s must be positive");
}

HealthWatchdog::HealthWatchdog() : HealthWatchdog(Config()) {}

HealthWatchdog::~HealthWatchdog() { detach(); }

void HealthWatchdog::attach(EventBus& bus) {
  detach();
  std::scoped_lock lock(mutex_);
  bus_ = &bus;
  listener_id_ = bus.add_listener([this](const Event& ev) { on_event(ev); });
}

void HealthWatchdog::detach() {
  EventBus* bus = nullptr;
  int id = 0;
  {
    std::scoped_lock lock(mutex_);
    bus = bus_;
    id = listener_id_;
    bus_ = nullptr;
    listener_id_ = 0;
  }
  if (bus != nullptr && id != 0) bus->remove_listener(id);
}

void HealthWatchdog::on_event(const Event& ev) {
  std::scoped_lock lock(mutex_);
  const auto worker_slot = [this](int w) -> WorkerInfo* {
    if (w < 0) return nullptr;
    if (static_cast<std::size_t>(w) >= workers_.size())
      workers_.resize(static_cast<std::size_t>(w) + 1);
    WorkerInfo& info = workers_[static_cast<std::size_t>(w)];
    info.worker = w;
    return &info;
  };
  WorkerInfo* info = worker_slot(ev.worker);
  if (info != nullptr) info->last_event_wall_s = ev.wall_s;
  switch (ev.type) {
    case EventType::kRunStarted:
      run_seen_ = true;
      run_active_ = true;
      last_progress_wall_s_ = ev.wall_s;
      ckpt_retries_since_progress_ = 0;
      evals_finished_ = 0;
      workers_.clear();
      break;
    case EventType::kRunFinished:
      run_active_ = false;
      break;
    case EventType::kEvalStarted:
      if (info != nullptr) info->busy = true;
      break;
    case EventType::kEvalFinished:
      last_progress_wall_s_ = ev.wall_s;
      ckpt_retries_since_progress_ = 0;
      ++evals_finished_;
      if (info != nullptr) {
        info->busy = false;
        ++info->evals_finished;
      }
      break;
    case EventType::kWorkerCrashed:
      if (info != nullptr) {
        info->busy = false;
        ++info->crashes;
      }
      break;
    case EventType::kCkptRetry:
      ++ckpt_retries_since_progress_;
      break;
    default:
      break;  // other lifecycle events carry no health signal
  }
}

HealthWatchdog::State HealthWatchdog::evaluate(double now_wall_s,
                                               std::string* why) const {
  if (!run_seen_ || !run_active_) return State::kIdle;
  if (ckpt_retries_since_progress_ > cfg_.ckpt_retry_limit) {
    *why = "checkpoint I/O degraded: " + std::to_string(ckpt_retries_since_progress_) +
           " retries since the last completed evaluation (limit " +
           std::to_string(cfg_.ckpt_retry_limit) + ")";
    return State::kCkptDegraded;
  }
  const double since = now_wall_s - last_progress_wall_s_;
  if (since > cfg_.stall_after_s) {
    *why = "stalled: no evaluation completed for " + std::to_string(since) +
           " s (threshold " + std::to_string(cfg_.stall_after_s) + " s)";
    return State::kStalled;
  }
  return State::kOk;
}

HealthWatchdog::State HealthWatchdog::poll() {
  const double now = SpanTracer::wall_now_us() / 1e6;
  State prev, next;
  std::string why;
  double since = -1.0;
  long busy = 0;
  long retries = 0;
  EventBus* bus = nullptr;
  {
    std::scoped_lock lock(mutex_);
    prev = state_;
    next = evaluate(now, &why);
    state_ = next;
    reason_ = why;
    if (run_seen_) since = now - last_progress_wall_s_;
    busy = std::count_if(workers_.begin(), workers_.end(),
                         [](const WorkerInfo& w) { return w.busy; });
    retries = ckpt_retries_since_progress_;
    bus = bus_;
  }
  if (metrics_enabled()) {
    MetricsRegistry& m = metrics();
    m.gauge("health.state").set(static_cast<double>(static_cast<int>(next)));
    m.gauge("health.seconds_since_progress").set(since);
    m.gauge("health.workers_busy").set(static_cast<double>(busy));
    m.gauge("health.ckpt_retries_since_progress").set(static_cast<double>(retries));
  }
  // The bus lock is not held here (poll() is never called from a listener),
  // so emitting the transition back onto the bus is safe.
  if (next != prev && bus != nullptr)
    bus->emit(EventType::kHealthChanged, -1.0, -1, -1,
              {{"state", event_str(to_string(next))},
               {"prev", event_str(to_string(prev))},
               {"reason", event_str(why)},
               {"seconds_since_progress", json_number(since)}});
  return next;
}

HealthWatchdog::State HealthWatchdog::state() const {
  std::scoped_lock lock(mutex_);
  return state_;
}

std::string HealthWatchdog::reason() const {
  std::scoped_lock lock(mutex_);
  return reason_;
}

bool HealthWatchdog::run_active() const {
  std::scoped_lock lock(mutex_);
  return run_active_;
}

double HealthWatchdog::seconds_since_progress() const {
  std::scoped_lock lock(mutex_);
  if (!run_seen_) return -1.0;
  return SpanTracer::wall_now_us() / 1e6 - last_progress_wall_s_;
}

std::vector<HealthWatchdog::WorkerInfo> HealthWatchdog::workers() const {
  std::scoped_lock lock(mutex_);
  std::vector<WorkerInfo> out;
  out.reserve(workers_.size());
  for (const WorkerInfo& w : workers_)
    if (w.worker >= 0) out.push_back(w);
  return out;
}

const char* HealthWatchdog::to_string(State s) noexcept {
  switch (s) {
    case State::kIdle: return "idle";
    case State::kOk: return "ok";
    case State::kStalled: return "stalled";
    case State::kCkptDegraded: return "ckpt_degraded";
  }
  return "unknown";
}

}  // namespace swt
