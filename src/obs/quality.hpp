// Online search-quality telemetry, updated incrementally inside run_search.
//
// Underwood et al. (PAPERS.md) argue that the evolution dynamics of a NAS
// population — lineage depth, weight reuse, score drift — are themselves
// the signal worth monitoring.  This module maintains those statistics
// *while the search runs* and publishes them as gauges/histograms in the
// process MetricsRegistry, so a live run exposes:
//
//   quality.best_score              rolling best estimation score
//   quality.transfer_hit_rate       fraction of evals that reused weights
//   quality.transfer_fallback_rate  fraction degraded to random init
//   quality.mean_lineage_depth      mean provider-chain depth (+ histogram
//   quality.lineage_depth           of per-eval depths)
//   quality.score_dispersion        stddev of the last-N completed scores
//   quality.kendall_tau_early_final incremental Kendall's tau between each
//                                   candidate's first-epoch and final
//                                   estimation score (the paper's Fig. 9
//                                   estimation-quality metric, live)
//
// The layer sits below everything else, so it speaks plain values rather
// than EvalRecord; run_search forwards the fields it needs.
#pragma once

#include <cstddef>
#include <deque>
#include <map>
#include <unordered_map>
#include <utility>
#include <vector>

namespace swt {

/// Incrementally maintained Kendall's tau-a over a growing set of (x, y)
/// pairs: add() compares the new pair against every stored one (O(n)), so a
/// live tau after n points costs the same total work as one batch
/// computation, amortised across the run.  Ties contribute to neither count,
/// matching swt::kendall_tau in common/stats.
class IncrementalKendall {
 public:
  /// Points beyond `max_points` are ignored (keeps the per-eval update cost
  /// bounded on very long searches); 0 = unbounded.
  explicit IncrementalKendall(std::size_t max_points = 4096) : max_points_(max_points) {}

  void add(double x, double y);

  /// Tau over the points seen so far; 0.0 with fewer than two points
  /// (batch kendall_tau throws instead — online code wants a total value).
  [[nodiscard]] double tau() const noexcept;
  [[nodiscard]] std::size_t count() const noexcept { return points_.size(); }

 private:
  std::size_t max_points_;
  std::vector<std::pair<double, double>> points_;
  long long concordant_ = 0;
  long long discordant_ = 0;
};

/// One completed evaluation, as the quality layer sees it.
struct QualityObservation {
  long eval_id = -1;
  long parent_id = -1;
  bool transferred = false;        ///< weights actually copied from a provider
  bool transfer_fallback = false;  ///< provider wanted but unreadable
  double first_epoch_score = 0.0;  ///< validation objective after epoch 1
  double score = 0.0;              ///< final estimation score
};

class QualityTelemetry {
 public:
  struct Config {
    /// Window (completed evals) for the population score-dispersion gauge,
    /// roughly one evolution population by default.
    std::size_t dispersion_window = 32;
    std::size_t kendall_max_points = 4096;
  };

  QualityTelemetry() : QualityTelemetry(Config{}) {}
  explicit QualityTelemetry(Config cfg);

  /// Fold one completed evaluation in and refresh the quality.* gauges.
  /// Returns true when this evaluation improved the rolling best score
  /// (the caller emits best_score_improved with its timeline context).
  bool observe(const QualityObservation& obs);

  [[nodiscard]] std::size_t evals_seen() const noexcept { return evals_; }
  [[nodiscard]] double best_score() const noexcept { return best_score_; }
  [[nodiscard]] double transfer_hit_rate() const noexcept;
  [[nodiscard]] double transfer_fallback_rate() const noexcept;
  [[nodiscard]] double mean_lineage_depth() const noexcept;
  [[nodiscard]] int max_lineage_depth() const noexcept { return max_depth_; }
  [[nodiscard]] double score_dispersion() const noexcept;
  [[nodiscard]] double early_final_tau() const noexcept { return kendall_.tau(); }
  /// Lineage-depth histogram (depth -> evaluation count).
  [[nodiscard]] const std::map<int, long>& lineage_histogram() const noexcept {
    return lineage_hist_;
  }

 private:
  void publish_gauges() const;

  Config cfg_;
  std::size_t evals_ = 0;
  std::size_t transfer_hits_ = 0;
  std::size_t transfer_fallbacks_ = 0;
  bool has_best_ = false;
  double best_score_ = 0.0;
  std::unordered_map<long, int> depth_by_id_;
  std::map<int, long> lineage_hist_;
  long depth_sum_ = 0;
  int max_depth_ = 0;
  std::deque<double> window_;
  IncrementalKendall kendall_;
};

}  // namespace swt
