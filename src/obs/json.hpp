// Minimal JSON support for the observability layer: escaping and number
// formatting on the write side, and a small recursive-descent parser on the
// read side so analyze_trace and the tests can load the span/metrics files
// this codebase itself writes.  Deliberately tiny — this is not a general
// JSON library (no streaming, no comments, doubles only).
#pragma once

#include <map>
#include <memory>
#include <string>
#include <string_view>
#include <vector>

namespace swt {

/// Escape `s` for inclusion inside a JSON string literal (no quotes added).
[[nodiscard]] std::string json_escape(std::string_view s);

/// Shortest round-trippable decimal representation; "null" for non-finite
/// values (JSON has no NaN/Inf tokens, and a bare `nan` would make the
/// whole document unparseable — NaN scores are reachable since the kernels
/// stopped skipping 0*NaN terms).  Consumers read such fields back through
/// JsonValue::number_or, which maps null to the caller's fallback.
[[nodiscard]] std::string json_number(double v);

/// Parsed JSON value.  Objects keep their keys sorted (std::map), which is
/// fine for every consumer here.
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  Kind kind = Kind::kNull;
  bool boolean = false;
  double number = 0.0;
  std::string string;
  std::vector<JsonValue> array;
  std::map<std::string, JsonValue> object;

  [[nodiscard]] bool is_object() const noexcept { return kind == Kind::kObject; }
  [[nodiscard]] bool is_array() const noexcept { return kind == Kind::kArray; }
  [[nodiscard]] bool contains(const std::string& key) const {
    return kind == Kind::kObject && object.find(key) != object.end();
  }
  /// Member access with defaults; returns a null value for missing keys.
  [[nodiscard]] const JsonValue& at(const std::string& key) const;
  [[nodiscard]] double number_or(const std::string& key, double fallback) const;
  [[nodiscard]] std::string string_or(const std::string& key,
                                      const std::string& fallback) const;
};

/// Parse one JSON document; throws std::runtime_error on malformed input
/// (with a byte offset in the message) or trailing garbage.
[[nodiscard]] JsonValue parse_json(std::string_view text);

}  // namespace swt
