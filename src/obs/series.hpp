// Time-series telemetry: periodic snapshots of registry scalars into
// fixed-capacity ring buffers.
//
// MetricsRegistry answers "what is the value now"; the event bus answers
// "what just happened".  Neither answers "how did the transfer hit rate
// evolve over the last ten minutes" without replaying a full event log.
// The TimeSeriesStore holds that middle ground: a background Sampler
// thread snapshots selected counters/gauges (including the quality.* and
// health.* families) every few hundred milliseconds and appends one
// (wall, virtual, value) point per series into a preallocated ring, so a
// live run can serve `GET /series?name=quality.best_score` at any moment
// and a finished run can export the whole history as CSV.
//
// Determinism contract: the sampler is a pure *reader*.  It never touches
// the virtual clock, the RNG streams or any search state — the virtual
// stamp comes from the `search.virtual_time_seconds` gauge that run_search
// publishes — so a sampled run produces a byte-identical trace to an
// unsampled one.  Appends take one short mutex-guarded splice into a
// preallocated buffer (no allocation after warm-up): cheap enough that the
// store could be fed from hot paths, though nothing does today.
#pragma once

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <functional>
#include <iosfwd>
#include <map>
#include <mutex>
#include <string>
#include <string_view>
#include <thread>
#include <vector>

namespace swt {

class MetricsRegistry;

/// One sampled value.  `virtual_s` is -1 when no virtual clock was live
/// (before run_search starts, or in processes that never run a search).
struct SeriesPoint {
  double wall_s = 0.0;     ///< wall seconds since the process trace epoch
  double virtual_s = -1.0; ///< search virtual time at the sample instant
  double value = 0.0;
};

/// Named fixed-capacity ring buffers of SeriesPoints.  Thread-safe; readers
/// see a consistent snapshot of each series.  When a ring is full the
/// oldest point is overwritten (dropped() counts them), so memory stays
/// bounded on arbitrarily long runs.
class TimeSeriesStore {
 public:
  /// `capacity` points are kept per series (must be >= 2).
  explicit TimeSeriesStore(std::size_t capacity = 1024);

  void append(std::string_view name, SeriesPoint p);

  [[nodiscard]] std::vector<std::string> names() const;
  /// All retained points of `name`, oldest first; empty for unknown series.
  [[nodiscard]] std::vector<SeriesPoint> points(std::string_view name) const;
  /// Downsampled window: at most `max_points` points spread evenly across
  /// the retained range, always including the newest point.  0 = all.
  [[nodiscard]] std::vector<SeriesPoint> window(std::string_view name,
                                                std::size_t max_points) const;

  [[nodiscard]] std::size_t capacity() const noexcept { return capacity_; }
  /// Total points ever appended to `name` (retained + overwritten).
  [[nodiscard]] std::uint64_t total_appended(std::string_view name) const;
  /// Points overwritten across all series (ring rollover).
  [[nodiscard]] std::uint64_t dropped() const;
  void clear();

 private:
  struct Ring {
    std::vector<SeriesPoint> buf;  ///< preallocated to capacity_
    std::size_t next = 0;          ///< insertion index
    std::uint64_t total = 0;       ///< lifetime appends
  };

  std::size_t capacity_;
  mutable std::mutex mutex_;
  std::map<std::string, Ring, std::less<>> series_;
  std::uint64_t dropped_ = 0;
};

/// CSV export/import: `series,wall_s,virtual_s,value` rows, series sorted
/// by name, points oldest first.  read_series_csv throws std::runtime_error
/// (with a line number) on malformed input.
void write_series_csv(std::ostream& os, const TimeSeriesStore& store);
void read_series_csv(std::istream& is, TimeSeriesStore& store);

/// JSON export of one series: {"name":..., "total":N, "points":[[wall_s,
/// virtual_s, value], ...]} — the `GET /series` payload.
[[nodiscard]] std::string series_to_json(std::string_view name,
                                         const std::vector<SeriesPoint>& pts,
                                         std::uint64_t total);

/// Background sampler: every `interval`, snapshot the registry's counters
/// and gauges whose names match one of the configured prefixes and append
/// them to the store.  Runs on its own thread; start()/stop() are
/// idempotent and the destructor joins.  tick() is public so tests and
/// shutdown paths can force one final synchronous sample.
class Sampler {
 public:
  struct Config {
    std::chrono::milliseconds interval{250};
    /// Series name prefixes to record; empty = every counter and gauge.
    /// Histograms are deliberately not sampled (their quantile computation
    /// is priced for end-of-run snapshots, not a 4 Hz loop).
    std::vector<std::string> prefixes = {"search.", "quality.", "cluster.",
                                         "health."};
    /// Gauge holding the live virtual clock; its value stamps every point
    /// (-1 when the gauge is absent or no search has started).
    std::string virtual_time_gauge = "search.virtual_time_seconds";
  };

  Sampler(TimeSeriesStore& store, MetricsRegistry& registry, Config cfg);
  Sampler(TimeSeriesStore& store, MetricsRegistry& registry);
  ~Sampler();

  Sampler(const Sampler&) = delete;
  Sampler& operator=(const Sampler&) = delete;

  void start();
  void stop();

  /// One synchronous sampling pass (also called by the background loop).
  void tick();

  /// Hook invoked after every tick (background or explicit) — the health
  /// watchdog polls here so stall detection advances even when nobody
  /// scrapes /healthz.  Set before start().
  void set_on_tick(std::function<void()> fn) { on_tick_ = std::move(fn); }

  [[nodiscard]] std::uint64_t ticks() const noexcept {
    return ticks_.load(std::memory_order_relaxed);
  }
  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }

 private:
  void loop();

  TimeSeriesStore& store_;
  MetricsRegistry& registry_;
  Config cfg_;
  std::function<void()> on_tick_;
  std::atomic<std::uint64_t> ticks_{0};
  std::atomic<bool> running_{false};
  bool stop_requested_ = false;  // guarded by mutex_
  std::mutex mutex_;
  std::condition_variable cv_;
  std::thread thread_;
};

}  // namespace swt
