#include "obs/prof/counters.hpp"

#include <errno.h>
#include <pthread.h>
#include <string.h>
#include <sys/syscall.h>
#include <time.h>
#include <unistd.h>

#include <atomic>
#include <mutex>
#include <vector>

#if __has_include(<linux/perf_event.h>)
#include <linux/perf_event.h>
#include <sys/ioctl.h>
#define SWT_HAVE_PERF_EVENT 1
#else
#define SWT_HAVE_PERF_EVENT 0
#endif

#include "obs/metrics.hpp"

namespace swt::prof {

namespace {

double thread_cpu_seconds() {
  timespec ts{};
  if (clock_gettime(CLOCK_THREAD_CPUTIME_ID, &ts) != 0) return 0.0;
  return static_cast<double>(ts.tv_sec) + static_cast<double>(ts.tv_nsec) * 1e-9;
}

// Registry of open perf fds so an atfork child can close every inherited
// descriptor (the child typically _exit()s or execs, but the crash-recovery
// tests fork from a fully instrumented parent).  generation bumps tell
// surviving instances their fds are gone.
std::mutex& fd_mutex() {
  static std::mutex* m = new std::mutex;
  return *m;
}
std::vector<int>& fd_registry() {
  static auto* v = new std::vector<int>;
  return *v;
}
std::atomic<std::uint64_t> g_fork_generation{0};

void register_fd(int fd) {
  std::lock_guard lk(fd_mutex());
  fd_registry().push_back(fd);
}

void unregister_fd(int fd) {
  std::lock_guard lk(fd_mutex());
  auto& fds = fd_registry();
  for (auto it = fds.begin(); it != fds.end(); ++it) {
    if (*it == fd) {
      fds.erase(it);
      return;
    }
  }
}

void counters_atfork_child() {
  // Locks may be held by threads that no longer exist: rebuild the mutex
  // state by construction order — the child only ever runs this once,
  // before touching counters again, and is single-threaded at this point.
  for (const int fd : fd_registry()) close(fd);
  fd_registry().clear();
  g_fork_generation.fetch_add(1, std::memory_order_relaxed);
}

void counters_atfork_prepare() { fd_mutex().lock(); }
void counters_atfork_parent() { fd_mutex().unlock(); }
void counters_atfork_child_unlock() { fd_mutex().unlock(); }

void install_counters_atfork_once() {
  static std::once_flag once;
  std::call_once(once, [] {
    pthread_atfork(&counters_atfork_prepare, &counters_atfork_parent, [] {
      counters_atfork_child_unlock();
      counters_atfork_child();
    });
  });
}

#if SWT_HAVE_PERF_EVENT
int perf_event_open_syscall(perf_event_attr* attr, pid_t pid, int cpu,
                            int group_fd, unsigned long flags) {
  return static_cast<int>(
      syscall(__NR_perf_event_open, attr, pid, cpu, group_fd, flags));
}

int open_hw_counter(std::uint64_t config, int group_fd, bool leader) {
  perf_event_attr attr{};
  attr.type = PERF_TYPE_HARDWARE;
  attr.size = sizeof(attr);
  attr.config = config;
  attr.disabled = leader ? 1 : 0;
  attr.exclude_kernel = 1;
  attr.exclude_hv = 1;
  if (leader) attr.read_format = PERF_FORMAT_GROUP;
  return perf_event_open_syscall(&attr, 0 /*calling thread*/, -1, group_fd, 0);
}
#endif

}  // namespace

const char* counter_backend_name(CounterBackend b) {
  switch (b) {
    case CounterBackend::kPerfEvent:
      return "perf_event";
    case CounterBackend::kThreadClock:
      return "thread_clock";
  }
  return "unknown";
}

CounterSample CounterSample::delta(const CounterSample& earlier) const {
  CounterSample d;
  d.cpu_seconds = cpu_seconds - earlier.cpu_seconds;
  d.cycles = cycles - earlier.cycles;
  d.instructions = instructions - earlier.instructions;
  d.cache_misses = cache_misses - earlier.cache_misses;
  d.hardware = hardware && earlier.hardware;
  return d;
}

void CounterSample::add(const CounterSample& other) {
  cpu_seconds += other.cpu_seconds;
  cycles += other.cycles;
  instructions += other.instructions;
  cache_misses += other.cache_misses;
  hardware = hardware && other.hardware;
}

ThreadCounters::ThreadCounters() { open(false); }

ThreadCounters::ThreadCounters(bool force_fallback) { open(force_fallback); }

ThreadCounters::~ThreadCounters() { close_fds(); }

void ThreadCounters::open(bool force_fallback) {
  install_counters_atfork_once();
  generation_ = g_fork_generation.load(std::memory_order_relaxed);
  backend_ = CounterBackend::kThreadClock;
  perf_errno_ = 0;
  if (force_fallback) return;
#if SWT_HAVE_PERF_EVENT
  const int cycles = open_hw_counter(PERF_COUNT_HW_CPU_CYCLES, -1, true);
  if (cycles < 0) {
    perf_errno_ = errno;  // EPERM/EACCES in containers, ENOSYS without perf
    return;
  }
  const int instructions = open_hw_counter(PERF_COUNT_HW_INSTRUCTIONS, cycles, false);
  const int misses = open_hw_counter(PERF_COUNT_HW_CACHE_MISSES, cycles, false);
  if (instructions < 0 || misses < 0) {
    perf_errno_ = errno;
    if (instructions >= 0) close(instructions);
    if (misses >= 0) close(misses);
    close(cycles);
    return;
  }
  group_fd_ = cycles;
  fds_[0] = cycles;
  fds_[1] = instructions;
  fds_[2] = misses;
  for (const int fd : fds_) register_fd(fd);
  ioctl(group_fd_, PERF_EVENT_IOC_RESET, PERF_IOC_FLAG_GROUP);
  ioctl(group_fd_, PERF_EVENT_IOC_ENABLE, PERF_IOC_FLAG_GROUP);
  backend_ = CounterBackend::kPerfEvent;
#else
  perf_errno_ = ENOSYS;
#endif
}

void ThreadCounters::close_fds() {
  if (group_fd_ < 0) return;
  // After a fork the child already closed every registered fd; closing
  // again would hit unrelated descriptors that reused the numbers.
  if (generation_ == g_fork_generation.load(std::memory_order_relaxed)) {
    for (const int fd : fds_) {
      if (fd >= 0) {
        unregister_fd(fd);
        close(fd);
      }
    }
  }
  group_fd_ = -1;
  fds_[0] = fds_[1] = fds_[2] = -1;
}

CounterSample ThreadCounters::read() {
  if (generation_ != g_fork_generation.load(std::memory_order_relaxed)) {
    group_fd_ = -1;  // fds were closed by the atfork child handler
    fds_[0] = fds_[1] = fds_[2] = -1;
    open(false);
  }
  CounterSample s;
  s.cpu_seconds = thread_cpu_seconds();
#if SWT_HAVE_PERF_EVENT
  if (backend_ == CounterBackend::kPerfEvent && group_fd_ >= 0) {
    // PERF_FORMAT_GROUP layout: u64 nr; u64 values[nr]; in creation order.
    std::uint64_t buf[1 + 3] = {};
    const ssize_t n = ::read(group_fd_, buf, sizeof(buf));
    if (n >= static_cast<ssize_t>(4 * sizeof(std::uint64_t)) && buf[0] >= 3) {
      s.cycles = static_cast<std::int64_t>(buf[1]);
      s.instructions = static_cast<std::int64_t>(buf[2]);
      s.cache_misses = static_cast<std::int64_t>(buf[3]);
      s.hardware = true;
    }
  }
#endif
  return s;
}

ThreadCounters& ThreadCounters::this_thread() {
  thread_local ThreadCounters counters;
  return counters;
}

// ---------------------------------------------------------------------------
// Phase accumulation

namespace {

struct PhaseInstruments {
  Counter& calls;
  Counter& flops;
  Gauge& wall;
  Gauge& cpu;
  Counter& cycles;
  Counter& instructions;
  Counter& cache_misses;
  Gauge& gflops;
  Gauge& ipc;
};

PhaseInstruments make_phase(const char* p) {
  const std::string prefix = std::string("prof.") + p;
  return PhaseInstruments{
      metrics().counter(prefix + ".calls_total"),
      metrics().counter(prefix + ".flops_total"),
      metrics().gauge(prefix + ".wall_seconds"),
      metrics().gauge(prefix + ".cpu_seconds"),
      metrics().counter(prefix + ".cycles_total"),
      metrics().counter(prefix + ".instructions_total"),
      metrics().counter(prefix + ".cache_misses_total"),
      metrics().gauge(prefix + ".gflops"),
      metrics().gauge(prefix + ".ipc"),
  };
}

PhaseInstruments& phase_instruments(Phase phase) {
  static PhaseInstruments gemm = make_phase("gemm");
  static PhaseInstruments conv = make_phase("conv");
  return phase == Phase::kGemm ? gemm : conv;
}

}  // namespace

void record_phase(Phase phase, double wall_seconds, std::int64_t flops,
                  const CounterSample& delta) {
  if (!metrics_enabled()) return;
  PhaseInstruments& ins = phase_instruments(phase);
  ins.calls.add(1);
  ins.flops.add(flops);
  ins.wall.add(wall_seconds);
  ins.cpu.add(delta.cpu_seconds);
  if (delta.hardware) {
    ins.cycles.add(delta.cycles);
    ins.instructions.add(delta.instructions);
    ins.cache_misses.add(delta.cache_misses);
  }
  const double wall_total = ins.wall.value();
  if (wall_total > 0.0)
    ins.gflops.set(static_cast<double>(ins.flops.value()) / wall_total / 1e9);
  const std::int64_t cycles_total = ins.cycles.value();
  if (cycles_total > 0)
    ins.ipc.set(static_cast<double>(ins.instructions.value()) /
                static_cast<double>(cycles_total));
}

}  // namespace swt::prof
