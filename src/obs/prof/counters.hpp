// Per-thread resource counters with a graceful fallback ladder:
//
//   1. perf_event_open (hardware cycles / instructions / cache-misses as one
//      counter group) + CLOCK_THREAD_CPUTIME_ID for CPU seconds, or
//   2. CLOCK_THREAD_CPUTIME_ID alone (containers commonly deny perf_event
//      with EPERM/EACCES; kernels without the syscall return ENOSYS).
//
// Both rungs are cheap enough to bracket kernel calls; which rung is active
// is visible via backend().  Fork safety: perf fds are process-global
// resources — an atfork child handler closes every registered fd and bumps
// a generation counter so surviving instances lazily reopen.
#pragma once

#include <cstdint>
#include <string>

namespace swt::prof {

enum class CounterBackend {
  kThreadClock,  // portable fallback: thread CPU clock only
  kPerfEvent,    // hardware counters via perf_event_open
};

const char* counter_backend_name(CounterBackend b);

/// Cumulative readings for one thread.  Hardware fields are zero when the
/// backend is kThreadClock.
struct CounterSample {
  double cpu_seconds = 0.0;
  std::int64_t cycles = 0;
  std::int64_t instructions = 0;
  std::int64_t cache_misses = 0;
  bool hardware = false;

  CounterSample delta(const CounterSample& earlier) const;

  /// Element-wise accumulate (cpu seconds, cycles, instructions, misses sum;
  /// `hardware` stays set only if both sides had hardware counters).  Used to
  /// fold the per-worker deltas of a parallel kernel dispatch into the
  /// calling thread's sample so phase attribution covers every thread that
  /// did work, not just the caller.
  void add(const CounterSample& other);
};

/// One thread's counter handle.  Construct and read from the owning thread
/// only (perf fds are opened for the calling thread).
class ThreadCounters {
 public:
  ThreadCounters();
  /// Test hook: force the portable fallback even when perf_event works.
  explicit ThreadCounters(bool force_fallback);
  ~ThreadCounters();
  ThreadCounters(const ThreadCounters&) = delete;
  ThreadCounters& operator=(const ThreadCounters&) = delete;

  CounterBackend backend() const noexcept { return backend_; }
  /// errno from the failed perf_event_open attempt (0 if it succeeded or
  /// was never attempted).
  int perf_errno() const noexcept { return perf_errno_; }

  CounterSample read();

  /// Lazily-constructed handle for the calling thread.
  static ThreadCounters& this_thread();

 private:
  void open(bool force_fallback);
  void close_fds();

  CounterBackend backend_ = CounterBackend::kThreadClock;
  int perf_errno_ = 0;
  int group_fd_ = -1;
  int fds_[3] = {-1, -1, -1};  // cycles (leader), instructions, cache-misses
  std::uint64_t generation_ = 0;
};

/// Phase attribution: kernels report wall time, FLOPs and the calling
/// thread's counter delta per call; the accumulators surface as prof.gemm.*
/// and prof.conv.* metrics (achieved GF/s, IPC, cache misses) on /metrics.
enum class Phase { kGemm, kConv };

void record_phase(Phase phase, double wall_seconds, std::int64_t flops,
                  const CounterSample& delta);

}  // namespace swt::prof
