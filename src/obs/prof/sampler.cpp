#include "obs/prof/sampler.hpp"

#include <cxxabi.h>
#include <dlfcn.h>
#include <pthread.h>
#include <signal.h>
#include <string.h>
#include <sys/syscall.h>
#include <time.h>
#include <ucontext.h>
#include <unistd.h>

#include <algorithm>
#include <chrono>
#include <condition_variable>
#include <cstdio>
#include <cstdlib>
#include <istream>
#include <mutex>
#include <ostream>
#include <sstream>
#include <thread>
#include <unordered_map>

#include "obs/json.hpp"
#include "obs/metrics.hpp"

// glibc keeps the Linux-specific per-thread notification field behind a
// union; the man page (timer_create(2)) blesses this spelling.
#ifndef sigev_notify_thread_id
#define sigev_notify_thread_id _sigev_un._tid
#endif
#ifndef SIGEV_THREAD_ID
#define SIGEV_THREAD_ID 4
#endif

namespace swt::prof {

// ---------------------------------------------------------------------------
// SampleRing

SampleRing::SampleRing(std::size_t capacity) {
  std::size_t cap = 8;
  while (cap < capacity && cap < (std::size_t{1} << 20)) cap <<= 1;
  slots_.resize(cap);
  mask_ = cap - 1;
}

bool SampleRing::try_push(const std::uintptr_t* pcs, int depth) noexcept {
  if (depth <= 0) return false;
  const std::uint64_t head = head_.load(std::memory_order_relaxed);
  const std::uint64_t tail = tail_.load(std::memory_order_acquire);
  if (head - tail >= slots_.size()) {
    dropped_.fetch_add(1, std::memory_order_relaxed);
    return false;
  }
  Sample& s = slots_[static_cast<std::size_t>(head) & mask_];
  const int n = std::min(depth, kMaxFrames);
  for (int i = 0; i < n; ++i) s.pc[i] = pcs[i];
  s.depth = static_cast<std::uint16_t>(n);
  head_.store(head + 1, std::memory_order_release);
  return true;
}

std::size_t SampleRing::drain(std::vector<Sample>& out) {
  std::size_t n = 0;
  std::uint64_t tail = tail_.load(std::memory_order_relaxed);
  const std::uint64_t head = head_.load(std::memory_order_acquire);
  while (tail < head) {
    out.push_back(slots_[static_cast<std::size_t>(tail) & mask_]);
    ++tail;
    ++n;
  }
  tail_.store(tail, std::memory_order_release);
  return n;
}

// ---------------------------------------------------------------------------
// Thread registry: a fixed arena of slots.  Slots (and their rings) are
// never deallocated, so a late signal can never touch freed memory; a
// parked slot is recycled for the next registering thread only after the
// collector takes its final drain.

namespace {

constexpr int kSlotFree = 0;
constexpr int kSlotActive = 1;
constexpr int kSlotParked = 2;

struct ThreadSlot {
  std::atomic<int> state{kSlotFree};
  pid_t tid = 0;
  pthread_t pth{};
  char name[32] = {};
  SampleRing* ring = nullptr;  // allocated on first use, never freed
  std::uintptr_t stack_lo = 0;
  std::uintptr_t stack_hi = 0;
  timer_t timer{};
  bool timer_armed = false;
};

constexpr int kMaxSlots = 128;
ThreadSlot g_slots[kMaxSlots];
thread_local ThreadSlot* tl_slot = nullptr;

// Guards the slot registry and profiler start/stop transitions.
std::mutex& registry_mutex() {
  static std::mutex* m = new std::mutex;  // leaked: outlives all threads
  return *m;
}

std::atomic<bool> g_sampling{false};  // read by the signal handler
bool g_running = false;               // guarded by registry_mutex()
int g_hz = 97;

struct Aggregate {
  std::mutex mu;
  std::map<std::vector<std::uintptr_t>, std::uint64_t> stacks;
  std::uint64_t total = 0;
  std::uint64_t dropped = 0;
};

Aggregate& agg() {
  static Aggregate* a = new Aggregate;  // leaked: handler-adjacent state
  return *a;
}

// Collector wake-up machinery (separate mutex: the collector takes
// registry_mutex() while draining, so stop() must not hold it to signal).
std::mutex g_cv_mu;
std::condition_variable g_cv;
bool g_stop_collector = false;
std::thread g_collector;

// ---------------------------------------------------------------------------
// Signal handler: frame-pointer walk seeded from the interrupted context.

#if defined(__has_feature)
#if __has_feature(address_sanitizer) || __has_feature(thread_sanitizer)
#define SWT_PROF_NO_SANITIZE \
  __attribute__((no_sanitize("address", "thread", "undefined")))
#endif
#endif
#ifndef SWT_PROF_NO_SANITIZE
#if defined(__SANITIZE_ADDRESS__) || defined(__SANITIZE_THREAD__)
#define SWT_PROF_NO_SANITIZE \
  __attribute__((no_sanitize_address)) __attribute__((no_sanitize_undefined))
#else
#define SWT_PROF_NO_SANITIZE
#endif
#endif

/// Walk saved frame pointers upward through [lo, hi).  Every dereference is
/// bounds- and alignment-checked first, so a corrupt or -fomit-frame-pointer
/// frame terminates the walk instead of faulting.
SWT_PROF_NO_SANITIZE
int walk_frames(std::uintptr_t pc, std::uintptr_t fp, std::uintptr_t lo,
                std::uintptr_t hi, std::uintptr_t* out, int max_frames) noexcept {
  int n = 0;
  if (pc != 0 && n < max_frames) out[n++] = pc;
  std::uintptr_t cur = fp;
  while (n < max_frames) {
    if (cur < lo || cur + 2 * sizeof(std::uintptr_t) > hi ||
        (cur & (sizeof(std::uintptr_t) - 1)) != 0)
      break;
    const std::uintptr_t* frame = reinterpret_cast<const std::uintptr_t*>(cur);
    const std::uintptr_t next_fp = frame[0];
    const std::uintptr_t ret = frame[1];
    if (ret < 4096) break;
    out[n++] = ret;
    if (next_fp <= cur) break;  // frames must strictly move toward the base
    cur = next_fp;
  }
  return n;
}

SWT_PROF_NO_SANITIZE
void sigprof_handler(int, siginfo_t*, void* uctx) {
  const int saved_errno = errno;
  ThreadSlot* slot = tl_slot;
  if (slot != nullptr && slot->ring != nullptr &&
      g_sampling.load(std::memory_order_relaxed)) {
    std::uintptr_t pc = 0, fp = 0, sp = 0;
    if (uctx != nullptr) {
      const ucontext_t* uc = static_cast<const ucontext_t*>(uctx);
#if defined(__x86_64__)
      pc = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RIP]);
      fp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RBP]);
      sp = static_cast<std::uintptr_t>(uc->uc_mcontext.gregs[REG_RSP]);
#elif defined(__aarch64__)
      pc = static_cast<std::uintptr_t>(uc->uc_mcontext.pc);
      fp = static_cast<std::uintptr_t>(uc->uc_mcontext.regs[29]);
      sp = static_cast<std::uintptr_t>(uc->uc_mcontext.sp);
#endif
    }
    if (pc == 0) {
      pc = reinterpret_cast<std::uintptr_t>(
          __builtin_extract_return_addr(__builtin_return_address(0)));
      fp = reinterpret_cast<std::uintptr_t>(__builtin_frame_address(0));
    }
    const std::uintptr_t lo = sp != 0 ? sp : slot->stack_lo;
    std::uintptr_t pcs[SampleRing::kMaxFrames];
    const int depth =
        walk_frames(pc, fp, lo, slot->stack_hi, pcs, SampleRing::kMaxFrames);
    slot->ring->try_push(pcs, depth);
  }
  errno = saved_errno;
}

void install_handler_locked() {
  static bool installed = false;
  if (installed) return;
  struct sigaction sa {};
  sa.sa_sigaction = &sigprof_handler;
  sa.sa_flags = SA_SIGINFO | SA_RESTART;
  sigemptyset(&sa.sa_mask);
  sigaction(SIGPROF, &sa, nullptr);
  installed = true;
}

// ---------------------------------------------------------------------------
// Timer arming / disarming (registry_mutex() held).

bool arm_timer_locked(ThreadSlot* s, int hz, std::string* err) {
  if (s->timer_armed) return true;
  clockid_t clock{};
  if (const int rc = pthread_getcpuclockid(s->pth, &clock); rc != 0) {
    if (err) *err = std::string("pthread_getcpuclockid: ") + strerror(rc);
    return false;
  }
  struct sigevent sev {};
  sev.sigev_notify = SIGEV_THREAD_ID;
  sev.sigev_signo = SIGPROF;
  sev.sigev_notify_thread_id = s->tid;
  if (timer_create(clock, &sev, &s->timer) != 0) {
    if (err) *err = std::string("timer_create: ") + strerror(errno);
    return false;
  }
  const long period_ns = 1000000000L / std::max(1, hz);
  itimerspec its{};
  its.it_interval.tv_sec = period_ns / 1000000000L;
  its.it_interval.tv_nsec = period_ns % 1000000000L;
  its.it_value = its.it_interval;
  if (timer_settime(s->timer, 0, &its, nullptr) != 0) {
    if (err) *err = std::string("timer_settime: ") + strerror(errno);
    timer_delete(s->timer);
    return false;
  }
  s->timer_armed = true;
  return true;
}

void disarm_timer_locked(ThreadSlot* s) {
  if (!s->timer_armed) return;
  timer_delete(s->timer);
  s->timer_armed = false;
}

void register_current_thread_locked(const char* name) {
  if (tl_slot != nullptr) return;
  ThreadSlot* slot = nullptr;
  for (int i = 0; i < kMaxSlots; ++i) {
    if (g_slots[i].state.load(std::memory_order_relaxed) == kSlotFree) {
      slot = &g_slots[i];
      break;
    }
  }
  if (slot == nullptr) return;  // arena exhausted: thread stays unprofiled
  slot->tid = static_cast<pid_t>(syscall(SYS_gettid));
  slot->pth = pthread_self();
  snprintf(slot->name, sizeof(slot->name), "%s", name != nullptr ? name : "thread");
  if (slot->ring == nullptr) slot->ring = new SampleRing();
  slot->stack_lo = 0;
  slot->stack_hi = 0;
  pthread_attr_t attr;
  if (pthread_getattr_np(pthread_self(), &attr) == 0) {
    void* stack_addr = nullptr;
    std::size_t stack_size = 0;
    if (pthread_attr_getstack(&attr, &stack_addr, &stack_size) == 0) {
      slot->stack_lo = reinterpret_cast<std::uintptr_t>(stack_addr);
      slot->stack_hi = slot->stack_lo + stack_size;
    }
    pthread_attr_destroy(&attr);
  }
  slot->timer_armed = false;
  slot->state.store(kSlotActive, std::memory_order_release);
  tl_slot = slot;
  if (g_running) arm_timer_locked(slot, g_hz, nullptr);
}

/// Drain every ring into the aggregate; recycle parked slots afterwards.
void drain_all() {
  std::vector<SampleRing::Sample> buf;
  int active = 0;
  std::uint64_t new_samples = 0, new_drops = 0;
  {
    std::scoped_lock lk(registry_mutex(), agg().mu);
    for (ThreadSlot& s : g_slots) {
      const int state = s.state.load(std::memory_order_acquire);
      if (state == kSlotFree || s.ring == nullptr) continue;
      if (state == kSlotActive) ++active;
      buf.clear();
      s.ring->drain(buf);
      new_drops += s.ring->take_dropped();
      for (const SampleRing::Sample& sample : buf) {
        std::vector<std::uintptr_t> key(sample.depth);
        for (int i = 0; i < sample.depth; ++i)
          key[static_cast<std::size_t>(i)] = sample.pc[sample.depth - 1 - i];
        ++agg().stacks[std::move(key)];
      }
      new_samples += buf.size();
      if (state == kSlotParked) s.state.store(kSlotFree, std::memory_order_release);
    }
    agg().total += new_samples;
    agg().dropped += new_drops;
  }
  if (new_samples > 0) {
    static Counter& samples = metrics().counter(
        "prof.samples_total");
    samples.add(static_cast<std::int64_t>(new_samples));
  }
  if (new_drops > 0) {
    static Counter& drops = metrics().counter(
        "prof.samples_dropped_total");
    drops.add(static_cast<std::int64_t>(new_drops));
  }
  static Gauge& threads =
      metrics().gauge("prof.threads");
  threads.set(static_cast<double>(active));
}

void collector_main() {
  for (;;) {
    bool stop = false;
    {
      std::unique_lock lk(g_cv_mu);
      g_cv.wait_for(lk, std::chrono::milliseconds(200),
                    [] { return g_stop_collector; });
      stop = g_stop_collector;
    }
    drain_all();
    if (stop) break;
  }
}

// ---------------------------------------------------------------------------
// fork() safety: POSIX timers are not inherited by the child, but a child
// that re-entered the profiler (or ran atexit paths) must see a quiesced,
// consistent registry.  Locks are held across the fork so the child's
// memory snapshot is never mid-update.

void atfork_prepare() {
  registry_mutex().lock();
  agg().mu.lock();
}

void atfork_parent() {
  agg().mu.unlock();
  registry_mutex().unlock();
}

void atfork_child() {
  agg().mu.unlock();
  registry_mutex().unlock();
  g_sampling.store(false, std::memory_order_relaxed);
  g_running = false;
  g_stop_collector = false;
  for (ThreadSlot& s : g_slots) {
    s.timer_armed = false;  // timers were not inherited
    s.state.store(kSlotFree, std::memory_order_relaxed);
  }
  tl_slot = nullptr;
}

void install_atfork_once() {
  static bool installed = false;
  if (!installed) {
    pthread_atfork(&atfork_prepare, &atfork_parent, &atfork_child);
    installed = true;
  }
}

}  // namespace

std::uint64_t SampleRing::take_dropped() noexcept {
  return dropped_.exchange(0, std::memory_order_relaxed);
}

// ---------------------------------------------------------------------------
// Public registration API

void register_current_thread(const char* name) {
  std::lock_guard lk(registry_mutex());
  register_current_thread_locked(name);
}

ScopedProfiledThread::ScopedProfiledThread(const char* name) {
  owned_ = (tl_slot == nullptr);
  register_current_thread(name);
}

ScopedProfiledThread::~ScopedProfiledThread() {
  if (!owned_) return;
  ThreadSlot* slot = tl_slot;
  if (slot == nullptr) return;
  tl_slot = nullptr;  // a stale in-flight signal now bails in the handler
  std::lock_guard lk(registry_mutex());
  disarm_timer_locked(slot);
  slot->state.store(kSlotParked, std::memory_order_release);
}

// ---------------------------------------------------------------------------
// CpuProfiler

CpuProfiler& CpuProfiler::global() {
  static CpuProfiler* p = new CpuProfiler;  // leaked: outlives worker threads
  return *p;
}

bool CpuProfiler::start(const ProfilerConfig& cfg) {
  {
    std::lock_guard lk(registry_mutex());
    if (g_running) {
      last_error_ = "profiler already running";
      return false;
    }
    install_atfork_once();
    install_handler_locked();
    hz_ = std::clamp(cfg.hz, 1, 1000);
    g_hz = hz_;
    register_current_thread_locked("caller");

    // Arm every registered thread.  The caller's own timer must succeed —
    // it is the canary for "sampling works at all on this system".
    std::string err;
    bool caller_ok = tl_slot == nullptr;  // arena exhausted: nothing to prove
    for (ThreadSlot& s : g_slots) {
      if (s.state.load(std::memory_order_acquire) != kSlotActive) continue;
      const bool ok = arm_timer_locked(&s, hz_, &err);
      if (&s == tl_slot) caller_ok = ok;
    }
    if (!caller_ok) {
      for (ThreadSlot& s : g_slots) disarm_timer_locked(&s);
      last_error_ = err.empty() ? "timer_create unavailable" : err;
      return false;
    }
    g_running = true;
    g_sampling.store(true, std::memory_order_release);
  }
  {
    std::lock_guard lk(g_cv_mu);
    g_stop_collector = false;
  }
  g_collector = std::thread(&collector_main);
  last_error_.clear();
  return true;
}

void CpuProfiler::stop() {
  {
    std::lock_guard lk(registry_mutex());
    if (!g_running) return;
    g_sampling.store(false, std::memory_order_release);
    for (ThreadSlot& s : g_slots) disarm_timer_locked(&s);
    g_running = false;
  }
  {
    std::lock_guard lk(g_cv_mu);
    g_stop_collector = true;
  }
  g_cv.notify_all();
  if (g_collector.joinable()) g_collector.join();
  drain_all();  // pick up anything pushed between the last sweep and disarm
}

bool CpuProfiler::running() const noexcept {
  return g_sampling.load(std::memory_order_acquire);
}

void CpuProfiler::reset() {
  drain_all();
  std::lock_guard lk(agg().mu);
  agg().stacks.clear();
  agg().total = 0;
  agg().dropped = 0;
}

StackProfile CpuProfiler::snapshot() {
  drain_all();
  StackProfile out;
  std::lock_guard lk(agg().mu);
  out.stacks = agg().stacks;
  out.total_samples = agg().total;
  out.dropped_samples = agg().dropped;
  return out;
}

// ---------------------------------------------------------------------------
// StackProfile arithmetic

StackProfile& StackProfile::subtract(const StackProfile& earlier) {
  for (const auto& [key, count] : earlier.stacks) {
    auto it = stacks.find(key);
    if (it == stacks.end()) continue;
    it->second = it->second > count ? it->second - count : 0;
    if (it->second == 0) stacks.erase(it);
  }
  total_samples = total_samples > earlier.total_samples
                      ? total_samples - earlier.total_samples
                      : 0;
  dropped_samples = dropped_samples > earlier.dropped_samples
                        ? dropped_samples - earlier.dropped_samples
                        : 0;
  return *this;
}

// ---------------------------------------------------------------------------
// Symbolization (offline, ordinary threads only)

namespace {

std::string hex_string(std::uintptr_t v) {
  char buf[2 + 2 * sizeof(std::uintptr_t) + 1];
  snprintf(buf, sizeof(buf), "0x%zx", static_cast<std::size_t>(v));
  return buf;
}

std::string sanitize_frame(std::string name) {
  for (char& c : name) {
    if (c == ';' || c == '\n' || c == '\r' || c == '\t') c = ':';
  }
  return name;
}

std::string symbolize_pc(std::uintptr_t pc) {
  static std::mutex mu;
  static auto* cache = new std::unordered_map<std::uintptr_t, std::string>;
  std::lock_guard lk(mu);
  if (auto it = cache->find(pc); it != cache->end()) return it->second;

  std::string name;
  Dl_info info{};
  if (dladdr(reinterpret_cast<void*>(pc), &info) != 0 && info.dli_sname != nullptr) {
    int status = 0;
    char* demangled = abi::__cxa_demangle(info.dli_sname, nullptr, nullptr, &status);
    name = (status == 0 && demangled != nullptr) ? demangled : info.dli_sname;
    std::free(demangled);
  } else if (info.dli_fname != nullptr && info.dli_fbase != nullptr) {
    const char* base = strrchr(info.dli_fname, '/');
    name = std::string(base != nullptr ? base + 1 : info.dli_fname) + "+" +
           hex_string(pc - reinterpret_cast<std::uintptr_t>(info.dli_fbase));
  } else {
    name = hex_string(pc);
  }
  name = sanitize_frame(std::move(name));
  (*cache)[pc] = name;
  return name;
}

}  // namespace

SymbolizedProfile symbolize(const StackProfile& raw) {
  SymbolizedProfile out;
  out.total_samples = raw.total_samples;
  out.dropped_samples = raw.dropped_samples;
  out.stacks.reserve(raw.stacks.size());
  for (const auto& [pcs, count] : raw.stacks) {
    std::vector<std::string> frames;
    frames.reserve(pcs.size());
    for (std::size_t i = 0; i < pcs.size(); ++i) {
      // Non-leaf frames hold return addresses: step back one byte so the
      // lookup lands inside the call instruction, not the next statement.
      const bool leaf = (i + 1 == pcs.size());
      frames.push_back(symbolize_pc(leaf ? pcs[i] : pcs[i] - 1));
    }
    out.stacks.emplace_back(std::move(frames), count);
  }
  return out;
}

std::string to_collapsed(const SymbolizedProfile& prof) {
  std::vector<std::pair<std::string, std::uint64_t>> lines;
  lines.reserve(prof.stacks.size());
  for (const auto& [frames, count] : prof.stacks) {
    std::string joined;
    for (std::size_t i = 0; i < frames.size(); ++i) {
      if (i != 0) joined += ';';
      joined += frames[i];
    }
    lines.emplace_back(std::move(joined), count);
  }
  std::sort(lines.begin(), lines.end(), [](const auto& a, const auto& b) {
    if (a.second != b.second) return a.second > b.second;
    return a.first < b.first;
  });
  std::string out;
  for (const auto& [stack, count] : lines) {
    out += stack;
    out += ' ';
    out += std::to_string(count);
    out += '\n';
  }
  return out;
}

SymbolizedProfile parse_collapsed(std::istream& in) {
  SymbolizedProfile out;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    const std::size_t space = line.rfind(' ');
    if (space == std::string::npos || space + 1 >= line.size()) continue;
    std::uint64_t count = 0;
    try {
      count = std::stoull(line.substr(space + 1));
    } catch (...) {
      continue;
    }
    std::vector<std::string> frames;
    std::size_t begin = 0;
    const std::string stack = line.substr(0, space);
    while (begin <= stack.size()) {
      const std::size_t semi = stack.find(';', begin);
      const std::size_t end = semi == std::string::npos ? stack.size() : semi;
      if (end > begin) frames.push_back(stack.substr(begin, end - begin));
      if (semi == std::string::npos) break;
      begin = semi + 1;
    }
    if (frames.empty()) continue;
    out.total_samples += count;
    out.stacks.emplace_back(std::move(frames), count);
  }
  return out;
}

void write_speedscope_json(std::ostream& out, const SymbolizedProfile& prof,
                           const std::string& name) {
  // Intern frames; each sample is a root-first frame-index stack with a
  // sample-count weight (speedscope "sampled" profile).
  std::unordered_map<std::string, std::size_t> frame_ids;
  std::vector<std::string> frames;
  std::vector<std::vector<std::size_t>> samples;
  std::vector<std::uint64_t> weights;
  std::uint64_t end_value = 0;
  for (const auto& [stack, count] : prof.stacks) {
    std::vector<std::size_t> ids;
    ids.reserve(stack.size());
    for (const std::string& frame : stack) {
      auto [it, inserted] = frame_ids.try_emplace(frame, frames.size());
      if (inserted) frames.push_back(frame);
      ids.push_back(it->second);
    }
    samples.push_back(std::move(ids));
    weights.push_back(count);
    end_value += count;
  }

  out << "{\"$schema\":\"https://www.speedscope.app/file-format-schema.json\","
      << "\"shared\":{\"frames\":[";
  for (std::size_t i = 0; i < frames.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"name\":\"" << json_escape(frames[i]) << "\"}";
  }
  out << "]},\"profiles\":[{\"type\":\"sampled\",\"name\":\"" << json_escape(name)
      << "\",\"unit\":\"none\",\"startValue\":0,\"endValue\":" << end_value
      << ",\"samples\":[";
  for (std::size_t i = 0; i < samples.size(); ++i) {
    if (i != 0) out << ',';
    out << '[';
    for (std::size_t j = 0; j < samples[i].size(); ++j) {
      if (j != 0) out << ',';
      out << samples[i][j];
    }
    out << ']';
  }
  out << "],\"weights\":[";
  for (std::size_t i = 0; i < weights.size(); ++i) {
    if (i != 0) out << ',';
    out << weights[i];
  }
  out << "]}],\"activeProfileIndex\":0,\"exporter\":\"swtnas\"}\n";
}

}  // namespace swt::prof
