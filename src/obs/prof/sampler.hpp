// Sampling CPU profiler: per-thread SIGPROF timers push frame-pointer
// backtraces into async-signal-safe ring buffers; a collector thread drains
// them into an aggregate stack -> count map that can be symbolized offline
// (dladdr + demangle) and rendered as collapsed flamegraph text or
// speedscope JSON.
//
// Signal-safety rules (see DESIGN.md §11): the SIGPROF handler only walks
// frame pointers seeded from the interrupted ucontext and pushes raw PCs
// into a preallocated single-producer/single-consumer ring.  No malloc, no
// locks, no dladdr, no glibc backtrace() (its lazy dl_iterate_phdr path can
// deadlock against the loader lock).  Everything that allocates or
// symbolizes runs on ordinary threads, after the fact.
//
// Determinism contract: the profiler observes wall-clock CPU time only.  It
// never touches the virtual clock, the search RNG, or any simulation state,
// so traces from profiled and unprofiled runs are byte-identical (CI
// cmp-gates this).
#pragma once

#include <atomic>
#include <cstddef>
#include <cstdint>
#include <iosfwd>
#include <map>
#include <string>
#include <utility>
#include <vector>

namespace swt::prof {

/// Fixed-capacity single-producer/single-consumer ring of stack samples.
/// The producer is the SIGPROF handler of exactly one thread; the consumer
/// is the profiler's collector thread.  Overflow drops the new sample and
/// bumps a counter instead of blocking — a profiler must never stall the
/// profiled thread.
class SampleRing {
 public:
  static constexpr int kMaxFrames = 32;

  struct Sample {
    std::uint16_t depth = 0;
    std::uintptr_t pc[kMaxFrames];  // root-last (pc[0] is the leaf)
  };

  /// Capacity is rounded up to a power of two, minimum 8.
  explicit SampleRing(std::size_t capacity = 2048);

  /// Producer side; async-signal-safe (no allocation, no locks).
  bool try_push(const std::uintptr_t* pcs, int depth) noexcept;

  /// Consumer side: append all pending samples to `out`, return how many.
  std::size_t drain(std::vector<Sample>& out);

  std::uint64_t dropped() const noexcept {
    return dropped_.load(std::memory_order_relaxed);
  }
  /// Consumer side: move the drop count out (so drops are counted once).
  std::uint64_t take_dropped() noexcept;
  std::size_t capacity() const noexcept { return slots_.size(); }

 private:
  std::vector<Sample> slots_;
  std::size_t mask_;
  std::atomic<std::uint64_t> head_{0};  // next write (producer)
  std::atomic<std::uint64_t> tail_{0};  // next read (consumer)
  std::atomic<std::uint64_t> dropped_{0};
};

/// Raw aggregated profile: root-first PC stacks -> sample counts.
struct StackProfile {
  std::map<std::vector<std::uintptr_t>, std::uint64_t> stacks;
  std::uint64_t total_samples = 0;
  std::uint64_t dropped_samples = 0;

  /// Window diff: subtract an earlier cumulative snapshot from this one.
  StackProfile& subtract(const StackProfile& earlier);
};

/// Symbolized profile: root-first frame-name stacks -> sample counts.
struct SymbolizedProfile {
  std::vector<std::pair<std::vector<std::string>, std::uint64_t>> stacks;
  std::uint64_t total_samples = 0;
  std::uint64_t dropped_samples = 0;
};

/// Offline symbolization via dladdr + __cxa_demangle (cached per PC).
/// Unresolvable frames render as "module+0x<off>" or "0x<pc>".
SymbolizedProfile symbolize(const StackProfile& raw);

/// Collapsed flamegraph text: one "frame;frame;frame count" line per stack,
/// root first, sorted by descending count then lexicographically.
std::string to_collapsed(const SymbolizedProfile& prof);

/// Parse collapsed text back (round-trip with to_collapsed; also accepts
/// external flamegraph collapsed files).  Count is the last space-separated
/// token so frame names may contain spaces (C++ template args).
SymbolizedProfile parse_collapsed(std::istream& in);

/// speedscope.app "sampled" profile JSON for interactive flamegraphs.
void write_speedscope_json(std::ostream& out, const SymbolizedProfile& prof,
                           const std::string& name);

struct ProfilerConfig {
  int hz = 97;  // prime, so sampling does not beat against 10ms schedulers
};

/// Register the calling thread for sampling (sticky, survives until thread
/// exit).  Threads that never register are never signalled — HTTP pollers
/// and collector threads stay out of profiles by construction.
void register_current_thread(const char* name);

/// RAII registration for pool workers: registers on construction, disarms
/// the timer and parks the slot on destruction.
class ScopedProfiledThread {
 public:
  explicit ScopedProfiledThread(const char* name);
  ~ScopedProfiledThread();
  ScopedProfiledThread(const ScopedProfiledThread&) = delete;
  ScopedProfiledThread& operator=(const ScopedProfiledThread&) = delete;

 private:
  bool owned_ = false;  // false when the thread was already registered
};

/// Process-wide sampling profiler.  start() arms one POSIX per-thread
/// CPU-time timer (timer_create + SIGEV_THREAD_ID) per registered thread
/// and spawns a collector; stop() disarms and performs a final drain.  The
/// aggregate is cumulative across start/stop cycles until reset().
class CpuProfiler {
 public:
  static CpuProfiler& global();

  /// Returns false (with last_error() set) if sampling is unavailable or
  /// the profiler is already running.  Registers the calling thread.
  bool start(const ProfilerConfig& cfg = {});
  void stop();
  bool running() const noexcept;
  void reset();

  /// Cumulative aggregate since the last reset (includes a live drain).
  StackProfile snapshot();

  const std::string& last_error() const { return last_error_; }
  int hz() const noexcept { return hz_; }

 private:
  CpuProfiler() = default;
  std::string last_error_;
  int hz_ = 0;
};

}  // namespace swt::prof
