// Virtual-timeline critical-path analysis.
//
// The virtual cluster's span trace is a dispatch DAG: every evaluation is
// bound either by the previous item on its worker (the worker was busy) or
// by its provider parent (the transfer source had to finish and drain its
// checkpoint first).  Walking binding predecessors backwards from the last
// evaluation yields the critical path; summing each phase along it says
// *why* the makespan is what it is (the explanatory form of the paper's
// Fig. 10/11 time shares) and what an optimisation could buy (what-if
// estimates are lower bounds: removing a cost can re-shape the schedule,
// never lengthen it).
//
// Layering: this header is obs-only.  It consumes a neutral
// `CriticalPathInput` which can be built from a span trace here
// (`critical_path_input_from_events`) or from a `Trace` in exp/analysis —
// obs cannot depend on the cluster layer.
#pragma once

#include <map>
#include <string>
#include <utility>
#include <vector>

#include "obs/span_tracer.hpp"

namespace swt::prof {

/// One completed evaluation with its per-phase decomposition (seconds).
/// Phases mirror `emit_eval_spans`: stall + ckpt_read + transfer + train +
/// ckpt_write + ckpt_retry == finish - start by construction.
struct EvalSpan {
  long id = -1;
  long parent_id = -1;
  int worker = -1;
  double start = 0.0;
  double finish = 0.0;
  double ready_at = 0.0;  ///< when children may read the checkpoint (>= finish)
  double stall = 0.0;     ///< waiting for the parent checkpoint drain
  double ckpt_read = 0.0;
  double transfer = 0.0;
  double train = 0.0;
  double ckpt_write = 0.0;
  double ckpt_retry = 0.0;
};

/// Worker-occupying fault time (crash work destroyed + recovery hole).
struct FaultSpan {
  int worker = -1;
  double start = 0.0;
  double finish = 0.0;
};

struct CriticalPathInput {
  std::vector<EvalSpan> evals;
  std::vector<FaultSpan> faults;
  int workers = 0;
};

/// One node on the critical path, in schedule order.
struct PathNode {
  long id = -1;  ///< evaluation id, or -1 for a fault block
  int worker = -1;
  double start = 0.0;
  double finish = 0.0;
  double wait_before = 0.0;    ///< gap after the binding predecessor finished
  std::string bound_by;        ///< "worker" | "parent" | "origin"
  long pred_id = -1;
};

struct WhatIf {
  std::string name;
  double removed_seconds = 0.0;  ///< cost removed along the critical path
  double est_makespan = 0.0;     ///< lower-bound estimate
  double est_speedup = 1.0;
};

struct CriticalPathReport {
  int workers = 0;
  double t0 = 0.0;
  double makespan = 0.0;        ///< finish of the last evaluation
  double worker_seconds = 0.0;  ///< workers x observed window
  /// Keys: train / transfer / checkpoint / "checkpoint stall" / fault / idle.
  std::map<std::string, double> phase_seconds;
  double share_sum = 0.0;  ///< sum of phase shares; ~1.0 by construction

  std::vector<PathNode> path;  ///< origin -> last evaluation
  double path_seconds = 0.0;
  double path_wait_seconds = 0.0;
  /// Evaluation id -> busy seconds on the path, largest first.
  std::vector<std::pair<long, double>> top_blocking;
  std::vector<WhatIf> what_ifs;
};

/// Rebuild the input from a span trace (nas_cli --trace-out / GET /trace).
/// Child phase segments are attributed to the enclosing eval span on the
/// same worker track.
CriticalPathInput critical_path_input_from_events(const std::vector<TraceEvent>& events);

CriticalPathReport analyze_critical_path(const CriticalPathInput& in, int top_k = 5);

/// Machine-readable form (GET /criticalpath, criticalpath.json artifacts).
std::string critical_path_json(const CriticalPathReport& r);

}  // namespace swt::prof
