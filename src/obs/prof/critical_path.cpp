#include "obs/prof/critical_path.hpp"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <sstream>
#include <unordered_map>

#include "obs/json.hpp"

namespace swt::prof {

namespace {

constexpr double kEps = 1e-9;

long arg_long(const TraceEvent& ev, const char* key, long fallback) {
  for (const auto& [k, v] : ev.args) {
    if (k == key) return std::strtol(v.c_str(), nullptr, 10);
  }
  return fallback;
}

/// A schedule item: either an evaluation (eval index >= 0) or a fault block.
struct Item {
  int worker = -1;
  double start = 0.0;
  double finish = 0.0;
  int eval_index = -1;   // into CriticalPathInput::evals
  int fault_index = -1;  // into CriticalPathInput::faults
};

}  // namespace

CriticalPathInput critical_path_input_from_events(
    const std::vector<TraceEvent>& events) {
  CriticalPathInput in;
  std::vector<int> workers_seen;

  for (const TraceEvent& ev : events) {
    if (ev.ph != 'X' || ev.pid != kTraceVirtualPid) continue;
    if (std::find(workers_seen.begin(), workers_seen.end(), ev.tid) ==
        workers_seen.end())
      workers_seen.push_back(ev.tid);
    if (ev.cat == "eval") {
      EvalSpan span;
      span.id = arg_long(ev, "id", -1);
      span.parent_id = arg_long(ev, "parent", -1);
      span.worker = ev.tid;
      span.start = ev.ts_us / 1e6;
      span.finish = (ev.ts_us + ev.dur_us) / 1e6;
      span.ready_at = span.finish;
      in.evals.push_back(span);
    } else if (ev.cat == "fault") {
      in.faults.push_back({ev.tid, ev.ts_us / 1e6, (ev.ts_us + ev.dur_us) / 1e6});
    }
  }

  // Attribute phase segments to the enclosing eval on the same worker.
  for (const TraceEvent& ev : events) {
    if (ev.ph != 'X' || ev.pid != kTraceVirtualPid) continue;
    if (ev.cat == "eval" || ev.cat == "fault") continue;
    const double mid = (ev.ts_us + ev.dur_us / 2.0) / 1e6;
    const double seconds = ev.dur_us / 1e6;
    for (EvalSpan& span : in.evals) {
      if (span.worker != ev.tid) continue;
      if (mid < span.start - kEps || mid > span.finish + kEps) continue;
      if (ev.name == "ckpt stall")
        span.stall += seconds;
      else if (ev.name == "ckpt read")
        span.ckpt_read += seconds;
      else if (ev.name == "transfer")
        span.transfer += seconds;
      else if (ev.name == "train")
        span.train += seconds;
      else if (ev.name == "ckpt write")
        span.ckpt_write += seconds;
      else if (ev.name == "ckpt retry")
        span.ckpt_retry += seconds;
      break;
    }
  }
  in.workers = static_cast<int>(workers_seen.size());
  return in;
}

CriticalPathReport analyze_critical_path(const CriticalPathInput& in, int top_k) {
  CriticalPathReport r;
  r.workers = in.workers > 0
                  ? in.workers
                  : [&] {
                      int w = 0;
                      for (const EvalSpan& e : in.evals) w = std::max(w, e.worker + 1);
                      return w;
                    }();
  if (in.evals.empty()) return r;

  // Observed window and phase totals.
  double t0 = in.evals.front().start, t_end = in.evals.front().finish;
  double busy = 0.0;
  for (const EvalSpan& e : in.evals) {
    t0 = std::min(t0, e.start);
    t_end = std::max(t_end, e.finish);
    r.makespan = std::max(r.makespan, e.finish);
    busy += e.finish - e.start;
    r.phase_seconds["train"] += e.train;
    r.phase_seconds["transfer"] += e.transfer;
    r.phase_seconds["checkpoint"] += e.ckpt_read + e.ckpt_write + e.ckpt_retry;
    r.phase_seconds["checkpoint stall"] += e.stall;
  }
  for (const FaultSpan& f : in.faults) {
    t0 = std::min(t0, f.start);
    t_end = std::max(t_end, f.finish);
    busy += f.finish - f.start;
    r.phase_seconds["fault"] += f.finish - f.start;
  }
  r.t0 = t0;
  r.worker_seconds = static_cast<double>(std::max(1, r.workers)) * (t_end - t0);
  r.phase_seconds["idle"] = std::max(0.0, r.worker_seconds - busy);
  // The envelope identity (phases sum to each eval's duration) makes the
  // shares sum to 1 up to clamping noise; report the actual sum so callers
  // can gate on it.
  double share_sum = 0.0;
  for (const auto& [_, seconds] : r.phase_seconds)
    share_sum += r.worker_seconds > 0.0 ? seconds / r.worker_seconds : 0.0;
  r.share_sum = share_sum;

  // Per-worker schedule, sorted by start time.
  std::unordered_map<int, std::vector<Item>> by_worker;
  std::unordered_map<long, Item> eval_items;
  for (std::size_t i = 0; i < in.evals.size(); ++i) {
    const EvalSpan& e = in.evals[i];
    const Item item{e.worker, e.start, e.finish, static_cast<int>(i), -1};
    by_worker[e.worker].push_back(item);
    eval_items[e.id] = item;
  }
  for (std::size_t i = 0; i < in.faults.size(); ++i) {
    const FaultSpan& f = in.faults[i];
    by_worker[f.worker].push_back(
        {f.worker, f.start, f.finish, -1, static_cast<int>(i)});
  }
  for (auto& [_, items] : by_worker)
    std::sort(items.begin(), items.end(),
              [](const Item& a, const Item& b) { return a.start < b.start; });

  // Walk binding predecessors backwards from the last-finishing evaluation.
  const auto last_it =
      std::max_element(in.evals.begin(), in.evals.end(),
                       [](const EvalSpan& a, const EvalSpan& b) {
                         return a.finish < b.finish;
                       });
  Item cur = eval_items[last_it->id];
  std::vector<PathNode> path;
  const std::size_t max_nodes = in.evals.size() + in.faults.size() + 1;
  while (path.size() < max_nodes) {
    PathNode node;
    node.worker = cur.worker;
    node.start = cur.start;
    node.finish = cur.finish;
    node.id = cur.eval_index >= 0 ? in.evals[static_cast<std::size_t>(cur.eval_index)].id
                                  : -1;

    // Candidate 1: the closest same-worker item that finished before start.
    const Item* worker_pred = nullptr;
    for (const Item& item : by_worker[cur.worker]) {
      if (item.start >= cur.start - kEps) continue;  // not strictly earlier
      if (item.finish > cur.start + kEps) continue;  // overlaps: not a pred
      if (worker_pred == nullptr || item.finish > worker_pred->finish)
        worker_pred = &item;
    }

    // Candidate 2: the provider parent (its checkpoint gates the transfer).
    const Item* parent_pred = nullptr;
    double parent_ready = 0.0;
    if (cur.eval_index >= 0) {
      const EvalSpan& e = in.evals[static_cast<std::size_t>(cur.eval_index)];
      if (e.parent_id >= 0) {
        const auto pit = eval_items.find(e.parent_id);
        if (pit != eval_items.end() && pit->second.finish <= cur.start + kEps) {
          parent_pred = &pit->second;
          parent_ready =
              in.evals[static_cast<std::size_t>(pit->second.eval_index)].ready_at;
        }
      }
    }

    const double worker_bind = worker_pred != nullptr ? worker_pred->finish : -1.0;
    const double parent_bind =
        parent_pred != nullptr ? std::max(parent_pred->finish, parent_ready) : -1.0;
    const Item* binding = nullptr;
    double bind_time = 0.0;
    if (parent_pred != nullptr && parent_bind >= worker_bind) {
      binding = parent_pred;
      bind_time = parent_bind;
      node.bound_by = "parent";
    } else if (worker_pred != nullptr) {
      binding = worker_pred;
      bind_time = worker_bind;
      node.bound_by = "worker";
    }

    if (binding == nullptr) {
      node.bound_by = "origin";
      node.wait_before = std::max(0.0, cur.start - t0);
      path.push_back(node);
      break;
    }
    node.wait_before = std::max(0.0, cur.start - bind_time);
    node.pred_id =
        binding->eval_index >= 0
            ? in.evals[static_cast<std::size_t>(binding->eval_index)].id
            : -1;
    path.push_back(node);
    cur = *binding;
  }
  std::reverse(path.begin(), path.end());
  r.path = std::move(path);
  r.path_seconds = r.makespan - t0;
  for (const PathNode& n : r.path) r.path_wait_seconds += n.wait_before;

  // Top blocking evaluations: longest busy stretches on the path.
  std::vector<std::pair<long, double>> blocking;
  for (const PathNode& n : r.path) {
    if (n.id >= 0) blocking.emplace_back(n.id, n.finish - n.start);
  }
  std::sort(blocking.begin(), blocking.end(),
            [](const auto& a, const auto& b) { return a.second > b.second; });
  if (static_cast<int>(blocking.size()) > top_k)
    blocking.resize(static_cast<std::size_t>(top_k));
  r.top_blocking = std::move(blocking);

  // What-if estimates: remove a cost component everywhere along the path.
  std::unordered_map<long, const EvalSpan*> span_by_id;
  for (const EvalSpan& e : in.evals) span_by_id[e.id] = &e;
  double ckpt_on_path = 0.0, transfer_on_path = 0.0, fault_on_path = 0.0;
  for (const PathNode& n : r.path) {
    if (n.id >= 0) {
      const EvalSpan& e = *span_by_id[n.id];
      ckpt_on_path += e.stall + e.ckpt_read + e.ckpt_write + e.ckpt_retry;
      transfer_on_path += e.transfer;
    } else {
      fault_on_path += n.finish - n.start;
    }
  }
  const auto what_if = [&](const char* name, double removed) {
    WhatIf w;
    w.name = name;
    w.removed_seconds = removed;
    w.est_makespan = std::max(kEps, r.path_seconds - removed);
    w.est_speedup = r.path_seconds > 0.0 ? r.path_seconds / w.est_makespan : 1.0;
    r.what_ifs.push_back(std::move(w));
  };
  what_if("zero_cost_checkpointing", ckpt_on_path);
  what_if("zero_cost_transfer", transfer_on_path);
  what_if("no_faults", fault_on_path);
  what_if("perfect_scheduling", r.path_wait_seconds);
  return r;
}

std::string critical_path_json(const CriticalPathReport& r) {
  std::ostringstream out;
  out << "{\"workers\":" << r.workers << ",\"t0_s\":" << json_number(r.t0)
      << ",\"makespan_s\":" << json_number(r.makespan)
      << ",\"worker_seconds\":" << json_number(r.worker_seconds)
      << ",\"share_sum\":" << json_number(r.share_sum) << ",\"phases\":{";
  bool first = true;
  for (const auto& [phase, seconds] : r.phase_seconds) {
    if (!first) out << ',';
    first = false;
    out << '"' << json_escape(phase) << "\":{\"seconds\":" << json_number(seconds)
        << ",\"share\":"
        << json_number(r.worker_seconds > 0.0 ? seconds / r.worker_seconds : 0.0)
        << '}';
  }
  out << "},\"critical_path\":{\"length_s\":" << json_number(r.path_seconds)
      << ",\"wait_s\":" << json_number(r.path_wait_seconds) << ",\"nodes\":[";
  for (std::size_t i = 0; i < r.path.size(); ++i) {
    const PathNode& n = r.path[i];
    if (i != 0) out << ',';
    out << "{\"id\":" << n.id << ",\"worker\":" << n.worker
        << ",\"start_s\":" << json_number(n.start)
        << ",\"finish_s\":" << json_number(n.finish)
        << ",\"wait_before_s\":" << json_number(n.wait_before) << ",\"bound_by\":\""
        << json_escape(n.bound_by) << "\",\"pred_id\":" << n.pred_id << '}';
  }
  out << "]},\"top_blocking\":[";
  for (std::size_t i = 0; i < r.top_blocking.size(); ++i) {
    if (i != 0) out << ',';
    out << "{\"id\":" << r.top_blocking[i].first
        << ",\"busy_s\":" << json_number(r.top_blocking[i].second) << '}';
  }
  out << "],\"what_if\":[";
  for (std::size_t i = 0; i < r.what_ifs.size(); ++i) {
    const WhatIf& w = r.what_ifs[i];
    if (i != 0) out << ',';
    out << "{\"name\":\"" << json_escape(w.name)
        << "\",\"removed_s\":" << json_number(w.removed_seconds)
        << ",\"est_makespan_s\":" << json_number(w.est_makespan)
        << ",\"est_speedup\":" << json_number(w.est_speedup) << '}';
  }
  out << "]}";
  return out.str();
}

}  // namespace swt::prof
