// Span tracing in Chrome/Perfetto `trace_event` format.
//
// Two kinds of timelines share one event buffer, distinguished by pid:
//
//   kTraceWallPid    — real threads measured in wall-clock microseconds
//                      since the process trace epoch (ScopedSpan).
//   kTraceVirtualPid — the simulated cluster's workers, one track (tid) per
//                      worker, measured in *virtual* microseconds (virtual
//                      seconds x 1e6).  run_search emits these, so a whole
//                      32-worker search renders as per-worker timelines in
//                      Perfetto / chrome://tracing.
//
// Recording is mutex-guarded (span granularity is per-epoch/per-evaluation,
// not per-instruction) and a disabled tracer rejects events after one
// relaxed atomic load, so the off-path costs a branch.
#pragma once

#include <atomic>
#include <cstddef>
#include <iosfwd>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

namespace swt {

/// One trace_event.  `args` values are raw JSON fragments (already quoted
/// for strings), so numeric counter samples and string annotations both
/// round-trip through the writer/reader unchanged.
struct TraceEvent {
  std::string name;
  std::string cat;
  char ph = 'X';       ///< X = complete span, C = counter, M = metadata, I = instant
  double ts_us = 0.0;  ///< start, microseconds (wall or virtual by pid)
  double dur_us = 0.0; ///< duration of 'X' events
  int pid = 0;
  int tid = 0;
  std::vector<std::pair<std::string, std::string>> args;
};

inline constexpr int kTraceWallPid = 1;
inline constexpr int kTraceVirtualPid = 2;

class SpanTracer {
 public:
  void set_enabled(bool on) noexcept {
    enabled_.store(on, std::memory_order_relaxed);
  }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Append one event (no-op when disabled).
  void record(TraceEvent ev);

  /// Convenience for 'X' complete spans.
  void complete(std::string name, std::string cat, int pid, int tid, double ts_us,
                double dur_us,
                std::vector<std::pair<std::string, std::string>> args = {});

  /// Chrome counter track sample ('C' event with args {"value": value}).
  void counter(std::string name, int pid, double ts_us, double value);

  /// Metadata events naming a process / track in the Perfetto UI.
  void name_process(int pid, const std::string& name);
  void name_track(int pid, int tid, const std::string& name);

  [[nodiscard]] std::vector<TraceEvent> events() const;
  [[nodiscard]] std::size_t size() const;
  void clear();

  /// The process-wide tracer all built-in instrumentation reports to;
  /// disabled until something (nas_cli --trace-out, bench_overhead, tests)
  /// turns it on.
  [[nodiscard]] static SpanTracer& global();

  /// Wall microseconds since the process trace epoch.
  [[nodiscard]] static double wall_now_us() noexcept;
  /// Small stable integer id for the calling thread (wall-track tid).
  [[nodiscard]] static int this_thread_tid();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::vector<TraceEvent> events_;
};

/// RAII wall-time span on the calling thread's track.  Nested scopes on the
/// same thread nest by interval containment, which is exactly how the
/// trace_event format expresses span nesting.
class ScopedSpan {
 public:
  explicit ScopedSpan(std::string name, std::string cat = "wall",
                      SpanTracer& tracer = SpanTracer::global());
  ~ScopedSpan();

  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  SpanTracer* tracer_;
  std::string name_;
  std::string cat_;
  double start_us_ = 0.0;
  bool active_ = false;  ///< tracer was enabled at construction
};

/// Serialize as {"displayTimeUnit": "ms", "traceEvents": [...]} — the JSON
/// object form chrome://tracing and Perfetto load directly.
void write_trace_json(std::ostream& os, const std::vector<TraceEvent>& events);
void write_trace_json(const std::string& path, const std::vector<TraceEvent>& events);

/// Parse a file written by write_trace_json (throws std::runtime_error on
/// malformed input).
[[nodiscard]] std::vector<TraceEvent> read_trace_json(std::istream& is);
[[nodiscard]] std::vector<TraceEvent> read_trace_json(const std::string& path);

}  // namespace swt
