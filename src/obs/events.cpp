#include "obs/events.hpp"

#include <ostream>

#include "obs/json.hpp"
#include "obs/span_tracer.hpp"

namespace swt {

const char* to_string(EventType type) noexcept {
  switch (type) {
    case EventType::kRunStarted: return "run_started";
    case EventType::kEvalSubmitted: return "eval_submitted";
    case EventType::kEvalStarted: return "eval_started";
    case EventType::kEvalFinished: return "eval_finished";
    case EventType::kTransferHit: return "transfer_hit";
    case EventType::kTransferFallback: return "transfer_fallback";
    case EventType::kCkptRead: return "ckpt_read";
    case EventType::kCkptWrite: return "ckpt_write";
    case EventType::kCkptRetry: return "ckpt_retry";
    case EventType::kCkptGiveUp: return "ckpt_give_up";
    case EventType::kWorkerCrashed: return "worker_crashed";
    case EventType::kWorkerRecovered: return "worker_recovered";
    case EventType::kResubmission: return "resubmission";
    case EventType::kBestScoreImproved: return "best_score_improved";
    case EventType::kRunFinished: return "run_finished";
    case EventType::kHealthChanged: return "health_changed";
  }
  return "unknown";
}

std::string event_str(std::string_view s) { return '"' + json_escape(s) + '"'; }

std::string event_to_ndjson(const Event& ev) {
  std::string line = "{\"ev\":\"";
  line += to_string(ev.type);
  line += "\",\"t\":";
  line += json_number(ev.wall_s);
  if (ev.virtual_s >= 0.0) {
    line += ",\"vt\":";
    line += json_number(ev.virtual_s);
  }
  if (ev.worker >= 0) {
    line += ",\"worker\":";
    line += std::to_string(ev.worker);
  }
  if (ev.eval_id >= 0) {
    line += ",\"id\":";
    line += std::to_string(ev.eval_id);
  }
  for (const auto& [key, value] : ev.fields) {
    line += ",\"";
    line += json_escape(key);
    line += "\":";
    line += value;
  }
  line += '}';
  return line;
}

void EventBus::set_stream(std::ostream* os) {
  std::scoped_lock lock(mutex_);
  stream_ = os;
}

void EventBus::set_listener(Listener listener) {
  std::scoped_lock lock(mutex_);
  listener_ = std::move(listener);
}

int EventBus::add_listener(Listener listener) {
  std::scoped_lock lock(mutex_);
  const int id = next_listener_id_++;
  extra_listeners_.emplace_back(id, std::move(listener));
  return id;
}

void EventBus::remove_listener(int id) {
  std::scoped_lock lock(mutex_);
  std::erase_if(extra_listeners_, [id](const auto& entry) { return entry.first == id; });
}

void EventBus::emit(Event ev) {
  if (!enabled()) return;
  ev.wall_s = SpanTracer::wall_now_us() / 1e6;
  // Serialize outside the lock; only the write and the counters contend.
  const std::string line = event_to_ndjson(ev);
  std::scoped_lock lock(mutex_);
  ++counts_[static_cast<std::size_t>(ev.type)];
  ++total_;
  if (stream_ != nullptr) {
    *stream_ << line << '\n';
    stream_->flush();  // keeps the file tailable mid-run
  }
  if (listener_) listener_(ev);
  for (const auto& [id, fn] : extra_listeners_) fn(ev);
}

void EventBus::emit(EventType type, double virtual_s, int worker, long eval_id,
                    std::vector<std::pair<std::string, std::string>> fields) {
  if (!enabled()) return;
  Event ev;
  ev.type = type;
  ev.virtual_s = virtual_s;
  ev.worker = worker;
  ev.eval_id = eval_id;
  ev.fields = std::move(fields);
  emit(std::move(ev));
}

long EventBus::total_emitted() const {
  std::scoped_lock lock(mutex_);
  return total_;
}

long EventBus::emitted(EventType type) const {
  std::scoped_lock lock(mutex_);
  return counts_[static_cast<std::size_t>(type)];
}

void EventBus::reset_counts() {
  std::scoped_lock lock(mutex_);
  for (long& c : counts_) c = 0;
  total_ = 0;
}

EventBus& EventBus::global() {
  static EventBus bus;
  return bus;
}

}  // namespace swt
