#include "obs/metrics.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <ostream>
#include <stdexcept>

#include "obs/json.hpp"

namespace swt {

namespace {
std::atomic<bool> g_metrics_enabled{true};
}  // namespace

void set_metrics_enabled(bool on) noexcept {
  g_metrics_enabled.store(on, std::memory_order_relaxed);
}

bool metrics_enabled() noexcept {
  return g_metrics_enabled.load(std::memory_order_relaxed);
}

void Gauge::add(double delta) noexcept {
  if (!metrics_enabled()) return;
  double cur = v_.load(std::memory_order_relaxed);
  while (!v_.compare_exchange_weak(cur, cur + delta, std::memory_order_relaxed)) {
  }
}

Histogram::Histogram(std::vector<double> bounds)
    : bounds_(bounds.empty() ? default_seconds_bounds() : std::move(bounds)),
      min_(std::numeric_limits<double>::infinity()),
      max_(-std::numeric_limits<double>::infinity()) {
  if (!std::is_sorted(bounds_.begin(), bounds_.end()) ||
      std::adjacent_find(bounds_.begin(), bounds_.end()) != bounds_.end())
    throw std::invalid_argument("Histogram: bounds must be strictly increasing");
  counts_ = std::make_unique<std::atomic<std::uint64_t>[]>(bounds_.size() + 1);
  for (std::size_t i = 0; i <= bounds_.size(); ++i) counts_[i].store(0);
}

std::vector<double> Histogram::default_seconds_bounds() {
  std::vector<double> b;
  for (double decade = 1e-6; decade < 1e3; decade *= 10.0)
    for (double m : {1.0, 2.0, 5.0}) b.push_back(decade * m);
  b.push_back(1e3);
  return b;
}

void Histogram::observe(double v) noexcept {
  if (!metrics_enabled()) return;
  const auto it = std::lower_bound(bounds_.begin(), bounds_.end(), v);
  const auto bucket = static_cast<std::size_t>(it - bounds_.begin());
  counts_[bucket].fetch_add(1, std::memory_order_relaxed);
  // Release pairs with the acquire load in count(): a scraper that reads
  // the total first and the buckets second can never see a count without
  // its bucket increment (see the header's concurrent-scrape contract).
  count_.fetch_add(1, std::memory_order_release);
  double cur = sum_.load(std::memory_order_relaxed);
  while (!sum_.compare_exchange_weak(cur, cur + v, std::memory_order_relaxed)) {
  }
  cur = min_.load(std::memory_order_relaxed);
  while (v < cur && !min_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
  cur = max_.load(std::memory_order_relaxed);
  while (v > cur && !max_.compare_exchange_weak(cur, v, std::memory_order_relaxed)) {
  }
}

double Histogram::min() const noexcept {
  return count() == 0 ? 0.0 : min_.load(std::memory_order_relaxed);
}

double Histogram::max() const noexcept {
  return count() == 0 ? 0.0 : max_.load(std::memory_order_relaxed);
}

double Histogram::mean() const noexcept {
  const std::uint64_t n = count();
  return n == 0 ? 0.0 : sum() / static_cast<double>(n);
}

std::vector<std::uint64_t> Histogram::bucket_counts() const {
  std::vector<std::uint64_t> out(bounds_.size() + 1);
  for (std::size_t i = 0; i < out.size(); ++i)
    out[i] = counts_[i].load(std::memory_order_relaxed);
  return out;
}

double Histogram::quantile(double q) const {
  const std::vector<std::uint64_t> counts = bucket_counts();
  std::uint64_t total = 0;
  for (const std::uint64_t c : counts) total += c;
  if (total == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(total);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts.size(); ++i) {
    if (counts[i] == 0) continue;
    const auto next = static_cast<double>(cum + counts[i]);
    if (next >= rank) {
      if (i == counts.size() - 1) return max();  // overflow bucket: no upper edge
      const double lo = i == 0 ? 0.0 : bounds_[i - 1];
      const double hi = bounds_[i];
      const double within =
          (rank - static_cast<double>(cum)) / static_cast<double>(counts[i]);
      return std::clamp(lo + (hi - lo) * within, min(), max());
    }
    cum += counts[i];
  }
  return max();
}

void Histogram::reset() noexcept {
  for (std::size_t i = 0; i <= bounds_.size(); ++i)
    counts_[i].store(0, std::memory_order_relaxed);
  count_.store(0, std::memory_order_relaxed);
  sum_.store(0.0, std::memory_order_relaxed);
  min_.store(std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
  max_.store(-std::numeric_limits<double>::infinity(), std::memory_order_relaxed);
}

Counter& MetricsRegistry::counter(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = counters_.find(name);
  if (it == counters_.end())
    it = counters_.emplace(std::string(name), std::make_unique<Counter>()).first;
  return *it->second;
}

Gauge& MetricsRegistry::gauge(std::string_view name) {
  std::scoped_lock lock(mutex_);
  auto it = gauges_.find(name);
  if (it == gauges_.end())
    it = gauges_.emplace(std::string(name), std::make_unique<Gauge>()).first;
  return *it->second;
}

Histogram& MetricsRegistry::histogram(std::string_view name, std::vector<double> bounds) {
  std::scoped_lock lock(mutex_);
  auto it = histograms_.find(name);
  if (it == histograms_.end())
    it = histograms_
             .emplace(std::string(name), std::make_unique<Histogram>(std::move(bounds)))
             .first;
  return *it->second;
}

MetricsSnapshot MetricsRegistry::snapshot() const {
  std::scoped_lock lock(mutex_);
  MetricsSnapshot snap;
  for (const auto& [name, c] : counters_) snap.counters.emplace(name, c->value());
  for (const auto& [name, g] : gauges_) snap.gauges.emplace(name, g->value());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot hs;
    hs.count = h->count();  // acquire: read before the buckets, see observe()
    hs.sum = h->sum();
    hs.min = h->min();
    hs.max = h->max();
    hs.p50 = h->quantile(0.50);
    hs.p90 = h->quantile(0.90);
    hs.p99 = h->quantile(0.99);
    hs.bounds = h->bounds();
    hs.counts = h->bucket_counts();
    snap.histograms.emplace(name, std::move(hs));
  }
  return snap;
}

std::map<std::string, double> MetricsRegistry::scalar_values() const {
  std::scoped_lock lock(mutex_);
  std::map<std::string, double> out;
  for (const auto& [name, c] : counters_)
    out.emplace(name, static_cast<double>(c->value()));
  for (const auto& [name, g] : gauges_) out.emplace(name, g->value());
  return out;
}

void MetricsRegistry::reset() {
  std::scoped_lock lock(mutex_);
  for (auto& [name, c] : counters_) c->reset();
  for (auto& [name, g] : gauges_) g->reset();
  for (auto& [name, h] : histograms_) h->reset();
}

MetricsRegistry& metrics() {
  static MetricsRegistry registry;
  return registry;
}

void write_metrics_json(std::ostream& os, const MetricsSnapshot& snap) {
  os << "{\n  \"counters\": {";
  bool first = true;
  for (const auto& [name, v] : snap.counters) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": " << v;
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"gauges\": {";
  first = true;
  for (const auto& [name, v] : snap.gauges) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name)
       << "\": " << json_number(v);
    first = false;
  }
  os << (first ? "" : "\n  ") << "},\n  \"histograms\": {";
  first = true;
  for (const auto& [name, h] : snap.histograms) {
    os << (first ? "" : ",") << "\n    \"" << json_escape(name) << "\": {\"count\": "
       << h.count << ", \"sum\": " << json_number(h.sum) << ", \"min\": "
       << json_number(h.min) << ", \"max\": " << json_number(h.max)
       << ", \"p50\": " << json_number(h.p50) << ", \"p90\": " << json_number(h.p90)
       << ", \"p99\": " << json_number(h.p99) << ", \"buckets\": [";
    bool first_bucket = true;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      if (h.counts[i] == 0) continue;  // sparse: only occupied buckets
      const bool overflow = i == h.bounds.size();
      os << (first_bucket ? "" : ", ") << "["
         << (overflow ? json_number(h.max) : json_number(h.bounds[i])) << ", "
         << h.counts[i] << "]";
      first_bucket = false;
    }
    os << "]}";
    first = false;
  }
  os << (first ? "" : "\n  ") << "}\n}\n";
}

std::string openmetrics_name(std::string_view name) {
  std::string out;
  out.reserve(name.size());
  for (const char c : name) {
    const bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                    (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += ok ? c : '_';
  }
  if (out.empty() || (out[0] >= '0' && out[0] <= '9')) out.insert(out.begin(), '_');
  return out;
}

namespace {

/// OpenMetrics value token: the spec has NaN/+Inf/-Inf literals where JSON
/// does not, so this deliberately diverges from json_number.
std::string om_value(double v) {
  if (std::isnan(v)) return "NaN";
  if (std::isinf(v)) return v > 0.0 ? "+Inf" : "-Inf";
  return json_number(v);
}

}  // namespace

void write_metrics_openmetrics(std::ostream& os, const MetricsSnapshot& snap) {
  for (const auto& [raw_name, v] : snap.counters) {
    // OpenMetrics: the counter *family* must not end in _total, the sample
    // must.  Registry counters conventionally already carry the suffix.
    std::string family = openmetrics_name(raw_name);
    constexpr std::string_view suffix = "_total";
    if (family.size() > suffix.size() &&
        family.compare(family.size() - suffix.size(), suffix.size(), suffix) == 0)
      family.resize(family.size() - suffix.size());
    os << "# TYPE " << family << " counter\n" << family << "_total " << v << "\n";
  }
  for (const auto& [raw_name, v] : snap.gauges) {
    const std::string name = openmetrics_name(raw_name);
    os << "# TYPE " << name << " gauge\n" << name << " " << om_value(v) << "\n";
  }
  for (const auto& [raw_name, h] : snap.histograms) {
    const std::string name = openmetrics_name(raw_name);
    os << "# TYPE " << name << " histogram\n";
    std::uint64_t cum = 0;
    for (std::size_t i = 0; i < h.counts.size(); ++i) {
      cum += h.counts[i];
      const bool overflow = i + 1 == h.counts.size();
      os << name << "_bucket{le=\""
         << (overflow ? "+Inf" : om_value(i < h.bounds.size() ? h.bounds[i] : 0.0))
         << "\"} " << cum << "\n";
    }
    os << name << "_sum " << om_value(h.sum) << "\n"
       << name << "_count " << h.count << "\n";
  }
  os << "# EOF\n";
}

void write_metrics_csv(std::ostream& os, const MetricsSnapshot& snap) {
  os << "name,kind,value\n";
  for (const auto& [name, v] : snap.counters) os << name << ",counter," << v << "\n";
  for (const auto& [name, v] : snap.gauges)
    os << name << ",gauge," << json_number(v) << "\n";
  for (const auto& [name, h] : snap.histograms) {
    os << name << ".count,histogram," << h.count << "\n"
       << name << ".sum,histogram," << json_number(h.sum) << "\n"
       << name << ".min,histogram," << json_number(h.min) << "\n"
       << name << ".max,histogram," << json_number(h.max) << "\n"
       << name << ".p50,histogram," << json_number(h.p50) << "\n"
       << name << ".p90,histogram," << json_number(h.p90) << "\n"
       << name << ".p99,histogram," << json_number(h.p99) << "\n";
  }
}

}  // namespace swt
