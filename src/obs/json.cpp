#include "obs/json.hpp"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstdlib>
#include <stdexcept>

namespace swt {

std::string json_escape(std::string_view s) {
  std::string out;
  out.reserve(s.size());
  for (const char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof buf, "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

std::string json_number(double v) {
  if (!std::isfinite(v)) return "null";
  if (v == static_cast<double>(static_cast<long long>(v)) && std::fabs(v) < 1e15)
    return std::to_string(static_cast<long long>(v));
  char buf[32];
  std::snprintf(buf, sizeof buf, "%.17g", v);
  return buf;
}

const JsonValue& JsonValue::at(const std::string& key) const {
  static const JsonValue null_value;
  if (kind != Kind::kObject) return null_value;
  const auto it = object.find(key);
  return it == object.end() ? null_value : it->second;
}

double JsonValue::number_or(const std::string& key, double fallback) const {
  const JsonValue& v = at(key);
  return v.kind == Kind::kNumber ? v.number : fallback;
}

std::string JsonValue::string_or(const std::string& key,
                                 const std::string& fallback) const {
  const JsonValue& v = at(key);
  return v.kind == Kind::kString ? v.string : fallback;
}

namespace {

class Parser {
 public:
  explicit Parser(std::string_view text) : text_(text) {}

  JsonValue parse_document() {
    JsonValue v = parse_value();
    skip_ws();
    if (pos_ != text_.size()) fail("trailing characters after JSON document");
    return v;
  }

 private:
  [[noreturn]] void fail(const std::string& why) const {
    throw std::runtime_error("parse_json: " + why + " at byte " + std::to_string(pos_));
  }

  void skip_ws() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r'))
      ++pos_;
  }

  char peek() {
    if (pos_ >= text_.size()) fail("unexpected end of input");
    return text_[pos_];
  }

  void expect(char c) {
    if (peek() != c) fail(std::string("expected '") + c + "'");
    ++pos_;
  }

  bool consume_literal(std::string_view lit) {
    if (text_.substr(pos_, lit.size()) != lit) return false;
    pos_ += lit.size();
    return true;
  }

  JsonValue parse_value() {
    skip_ws();
    const char c = peek();
    switch (c) {
      case '{': return parse_object();
      case '[': return parse_array();
      case '"': {
        JsonValue v;
        v.kind = JsonValue::Kind::kString;
        v.string = parse_string();
        return v;
      }
      case 't':
      case 'f': {
        JsonValue v;
        v.kind = JsonValue::Kind::kBool;
        v.boolean = c == 't';
        if (!consume_literal(c == 't' ? "true" : "false")) fail("bad literal");
        return v;
      }
      case 'n': {
        if (!consume_literal("null")) fail("bad literal");
        return JsonValue{};
      }
      default: return parse_number();
    }
  }

  JsonValue parse_object() {
    expect('{');
    JsonValue v;
    v.kind = JsonValue::Kind::kObject;
    skip_ws();
    if (peek() == '}') {
      ++pos_;
      return v;
    }
    while (true) {
      skip_ws();
      std::string key = parse_string();
      skip_ws();
      expect(':');
      v.object.emplace(std::move(key), parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect('}');
      return v;
    }
  }

  JsonValue parse_array() {
    expect('[');
    JsonValue v;
    v.kind = JsonValue::Kind::kArray;
    skip_ws();
    if (peek() == ']') {
      ++pos_;
      return v;
    }
    while (true) {
      v.array.push_back(parse_value());
      skip_ws();
      if (peek() == ',') {
        ++pos_;
        continue;
      }
      expect(']');
      return v;
    }
  }

  std::string parse_string() {
    expect('"');
    std::string out;
    while (true) {
      if (pos_ >= text_.size()) fail("unterminated string");
      const char c = text_[pos_++];
      if (c == '"') return out;
      if (c != '\\') {
        out += c;
        continue;
      }
      if (pos_ >= text_.size()) fail("unterminated escape");
      const char e = text_[pos_++];
      switch (e) {
        case '"': out += '"'; break;
        case '\\': out += '\\'; break;
        case '/': out += '/'; break;
        case 'b': out += '\b'; break;
        case 'f': out += '\f'; break;
        case 'n': out += '\n'; break;
        case 'r': out += '\r'; break;
        case 't': out += '\t'; break;
        case 'u': {
          if (pos_ + 4 > text_.size()) fail("truncated \\u escape");
          const std::string hex(text_.substr(pos_, 4));
          pos_ += 4;
          const long code = std::strtol(hex.c_str(), nullptr, 16);
          // Only the control-character range we ever emit; everything else
          // in our files is raw UTF-8.
          if (code < 0x80) {
            out += static_cast<char>(code);
          } else {
            out += '?';
          }
          break;
        }
        default: fail("bad escape character");
      }
    }
  }

  JsonValue parse_number() {
    const std::size_t start = pos_;
    if (peek() == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-'))
      ++pos_;
    if (pos_ == start) fail("expected a value");
    const std::string token(text_.substr(start, pos_ - start));
    char* end = nullptr;
    const double value = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') fail("malformed number '" + token + "'");
    JsonValue v;
    v.kind = JsonValue::Kind::kNumber;
    v.number = value;
    return v;
  }

  std::string_view text_;
  std::size_t pos_ = 0;
};

}  // namespace

JsonValue parse_json(std::string_view text) { return Parser(text).parse_document(); }

}  // namespace swt
