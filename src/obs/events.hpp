// Streaming lifecycle events for live observation of a running search.
//
// MetricsRegistry and SpanTracer answer "what happened" after a run ends;
// the event bus answers "what is happening now": every lifecycle transition
// of a search (run/eval boundaries, transfer outcomes, checkpoint I/O,
// crashes, resubmissions, best-score improvements) is emitted as one NDJSON
// object on its own line, so a multi-hour search can be tailed with
// `tail -f run.ndjson | jq`.  Each event is stamped with wall seconds since
// the process trace epoch, the virtual-cluster time, and the worker/eval it
// concerns (-1 when not applicable).
//
// The bus is kill-switchable like the other instruments: a disabled bus
// rejects events after one relaxed atomic load, so the off-path costs a
// branch and call sites can stay unconditional.  Emission serializes the
// line under a mutex (event granularity is per-evaluation, not
// per-instruction), writes it to the attached stream, and hands the raw
// Event to an optional in-process listener (nas_cli's --progress heartbeat).
#pragma once

#include <atomic>
#include <cstddef>
#include <functional>
#include <iosfwd>
#include <mutex>
#include <string>
#include <string_view>
#include <utility>
#include <vector>

namespace swt {

enum class EventType {
  kRunStarted,
  kEvalSubmitted,
  kEvalStarted,
  kEvalFinished,
  kTransferHit,
  kTransferFallback,
  kCkptRead,
  kCkptWrite,
  kCkptRetry,
  kCkptGiveUp,
  kWorkerCrashed,
  kWorkerRecovered,
  kResubmission,
  kBestScoreImproved,
  kRunFinished,
  kHealthChanged,  ///< watchdog state transition (obs/health.hpp)
};

inline constexpr std::size_t kNumEventTypes = 16;

/// Stable NDJSON name of `type` ("run_started", "eval_finished", ...).
[[nodiscard]] const char* to_string(EventType type) noexcept;

/// One lifecycle event.  `fields` values are raw JSON fragments (numbers as
/// formatted by json_number, strings pre-quoted via event_str), mirroring
/// TraceEvent::args so both layers share one convention.
struct Event {
  EventType type = EventType::kRunStarted;
  double wall_s = 0.0;     ///< wall seconds since the process trace epoch
  double virtual_s = -1.0; ///< virtual-cluster seconds; < 0 = not applicable
  int worker = -1;
  long eval_id = -1;
  std::vector<std::pair<std::string, std::string>> fields;
};

/// Quote + escape `s` for use as an Event field value.
[[nodiscard]] std::string event_str(std::string_view s);

class EventBus {
 public:
  void set_enabled(bool on) noexcept { enabled_.store(on, std::memory_order_relaxed); }
  [[nodiscard]] bool enabled() const noexcept {
    return enabled_.load(std::memory_order_relaxed);
  }

  /// Attach the NDJSON output stream (not owned; nullptr detaches).  The
  /// stream is flushed after every line so the file can be tailed live.
  void set_stream(std::ostream* os);

  /// In-process observer invoked (under the bus lock) with every emitted
  /// event; an empty function detaches.  Used by nas_cli's --progress.
  using Listener = std::function<void(const Event&)>;
  void set_listener(Listener listener);

  /// Additional observers (the health watchdog, tests) that coexist with
  /// the primary set_listener slot.  Returns an id for remove_listener.
  /// Listeners run under the bus lock: never emit back into the bus from
  /// one (self-deadlock) and keep them allocation-light.
  int add_listener(Listener listener);
  void remove_listener(int id);

  /// Emit one event (no-op when disabled).
  void emit(Event ev);

  /// Convenience overload building the Event in place.
  void emit(EventType type, double virtual_s = -1.0, int worker = -1, long eval_id = -1,
            std::vector<std::pair<std::string, std::string>> fields = {});

  /// Events emitted since construction / reset(), total and per type.
  /// Tests and nas_cli reconcile these against the Trace's failure counters.
  [[nodiscard]] long total_emitted() const;
  [[nodiscard]] long emitted(EventType type) const;

  /// Zero the emission counters (stream and listener stay attached).
  void reset_counts();

  /// The process-wide bus all built-in emission points report to; disabled
  /// until something (nas_cli --events-out/--progress, tests) turns it on.
  [[nodiscard]] static EventBus& global();

 private:
  std::atomic<bool> enabled_{false};
  mutable std::mutex mutex_;
  std::ostream* stream_ = nullptr;
  Listener listener_;
  std::vector<std::pair<int, Listener>> extra_listeners_;
  int next_listener_id_ = 1;
  long counts_[kNumEventTypes] = {};
  long total_ = 0;
};

/// Serialize one event as a single-line JSON object (no trailing newline):
/// {"ev":"eval_finished","t":1.25,"vt":310.5,"worker":3,"id":17,...fields}.
/// `vt`, `worker` and `id` are omitted when not applicable.
[[nodiscard]] std::string event_to_ndjson(const Event& ev);

}  // namespace swt
