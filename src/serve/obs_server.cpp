#include "serve/obs_server.hpp"

#include <algorithm>
#include <chrono>
#include <sstream>
#include <thread>

#include "obs/health.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/critical_path.hpp"
#include "obs/prof/sampler.hpp"
#include "obs/series.hpp"
#include "obs/span_tracer.hpp"

namespace swt {

ObservabilityServer::ObservabilityServer(HttpServer::Config cfg,
                                         MetricsRegistry& registry,
                                         TimeSeriesStore* store,
                                         HealthWatchdog* watchdog, StatusInfo info)
    : registry_(registry),
      store_(store),
      watchdog_(watchdog),
      info_(std::move(info)),
      start_wall_s_(SpanTracer::wall_now_us() / 1e6),
      server_(std::make_unique<HttpServer>(
          std::move(cfg), [this](const HttpRequest& req) { return handle(req); })) {}

void ObservabilityServer::start() { server_->start(); }
void ObservabilityServer::stop() { server_->stop(); }
int ObservabilityServer::port() const noexcept { return server_->port(); }
std::uint64_t ObservabilityServer::requests_served() const noexcept {
  return server_->requests_served();
}

HttpResponse ObservabilityServer::handle(const HttpRequest& req) {
  if (req.path == "/metrics") return metrics_endpoint();
  if (req.path == "/healthz") return healthz_endpoint();
  if (req.path == "/status") return status_endpoint();
  if (req.path == "/series") return series_endpoint(req);
  if (req.path == "/profile") return profile_endpoint(req);
  if (req.path == "/criticalpath") return criticalpath_endpoint();
  if (req.path == "/")
    return HttpResponse{200, "text/plain; charset=utf-8",
                        "swtnas telemetry plane\n"
                        "  GET /metrics  OpenMetrics exposition\n"
                        "  GET /healthz  liveness (503 on stall)\n"
                        "  GET /status   run status JSON\n"
                        "  GET /series?name=...&max_points=N[&format=csv]\n"
                        "  GET /profile?seconds=N  collapsed CPU stacks\n"
                        "  GET /criticalpath  critical-path analysis JSON\n"};
  return HttpResponse{404, "text/plain; charset=utf-8", "no such endpoint\n"};
}

HttpResponse ObservabilityServer::metrics_endpoint() {
  std::ostringstream body;
  write_metrics_openmetrics(body, registry_.snapshot());
  return HttpResponse{
      200, "application/openmetrics-text; version=1.0.0; charset=utf-8", body.str()};
}

HttpResponse ObservabilityServer::healthz_endpoint() {
  if (watchdog_ == nullptr)
    return HttpResponse{200, "application/json", "{\"status\":\"ok\"}\n"};
  const HealthWatchdog::State state = watchdog_->poll();
  const bool healthy = state == HealthWatchdog::State::kOk ||
                       state == HealthWatchdog::State::kIdle;
  std::string body = "{\"status\":\"";
  body += HealthWatchdog::to_string(state);
  if (!healthy) {
    body += "\",\"reason\":\"";
    body += json_escape(watchdog_->reason());
  }
  body += "\",\"seconds_since_progress\":";
  body += json_number(watchdog_->seconds_since_progress());
  body += "}\n";
  return HttpResponse{healthy ? 200 : 503, "application/json", std::move(body)};
}

HttpResponse ObservabilityServer::status_endpoint() {
  const auto scalars = registry_.scalar_values();
  const auto value_or = [&scalars](const char* name, double fallback) {
    const auto it = scalars.find(name);
    return it == scalars.end() ? fallback : it->second;
  };
  std::string body = "{\"run_id\":\"" + json_escape(info_.run_id) + "\",\"app\":\"" +
                     json_escape(info_.app) + "\",\"mode\":\"" + json_escape(info_.mode) +
                     "\",\"n_evals_target\":" + std::to_string(info_.n_evals);
  body += ",\"uptime_wall_s\":" +
          json_number(SpanTracer::wall_now_us() / 1e6 - start_wall_s_);
  body += ",\"evals_completed\":" + json_number(value_or("search.evals_completed", 0));
  body += ",\"evals_submitted\":" + json_number(value_or("search.evals_submitted", 0));
  body += ",\"evals_in_flight\":" + json_number(value_or("search.evals_in_flight", 0));
  body += ",\"virtual_time_s\":" + json_number(value_or("search.virtual_time_seconds", -1));
  body += ",\"best_score\":" + json_number(value_or("quality.best_score", 0));
  body += ",\"transfer_hit_rate\":" + json_number(value_or("quality.transfer_hit_rate", 0));
  body += ",\"transfer_fallback_rate\":" +
          json_number(value_or("quality.transfer_fallback_rate", 0));
  body +=
      ",\"kendall_tau_early_final\":" +
      json_number(value_or("quality.kendall_tau_early_final", 0));
  if (watchdog_ != nullptr) {
    body += ",\"health\":\"";
    body += HealthWatchdog::to_string(watchdog_->state());
    body += "\",\"workers\":[";
    bool first = true;
    for (const HealthWatchdog::WorkerInfo& w : watchdog_->workers()) {
      if (!first) body += ',';
      first = false;
      body += "{\"worker\":" + std::to_string(w.worker) +
              ",\"busy\":" + (w.busy ? "true" : "false") +
              ",\"evals_finished\":" + std::to_string(w.evals_finished) +
              ",\"crashes\":" + std::to_string(w.crashes) + "}";
    }
    body += ']';
  }
  body += "}\n";
  return HttpResponse{200, "application/json", std::move(body)};
}

HttpResponse ObservabilityServer::series_endpoint(const HttpRequest& req) {
  if (store_ == nullptr)
    return HttpResponse{404, "application/json",
                        "{\"error\":\"no time-series store attached\"}\n"};
  const auto name_it = req.query.find("name");
  if (name_it == req.query.end()) {
    std::string body = "{\"series\":[";
    bool first = true;
    for (const std::string& name : store_->names()) {
      if (!first) body += ',';
      first = false;
      body += "{\"name\":\"" + json_escape(name) +
              "\",\"total\":" + std::to_string(store_->total_appended(name)) + "}";
    }
    body += "]}\n";
    return HttpResponse{200, "application/json", std::move(body)};
  }
  const std::string& name = name_it->second;
  std::size_t max_points = 512;
  const auto mp = req.query.find("max_points");
  if (mp != req.query.end()) {
    try {
      max_points = static_cast<std::size_t>(std::stoul(mp->second));
    } catch (const std::exception&) {
      return HttpResponse{400, "text/plain; charset=utf-8", "bad max_points\n"};
    }
  }
  const std::vector<SeriesPoint> pts = store_->window(name, max_points);
  const auto fmt = req.query.find("format");
  if (fmt != req.query.end() && fmt->second == "csv") {
    std::string body = "series,wall_s,virtual_s,value\n";
    for (const SeriesPoint& p : pts)
      body += name + ',' + json_number(p.wall_s) + ',' + json_number(p.virtual_s) +
              ',' + json_number(p.value) + '\n';
    return HttpResponse{200, "text/csv; charset=utf-8", std::move(body)};
  }
  return HttpResponse{200, "application/json",
                      series_to_json(name, pts, store_->total_appended(name)) + "\n"};
}

HttpResponse ObservabilityServer::profile_endpoint(const HttpRequest& req) {
  if (profiler_ == nullptr || !profiler_->running())
    return HttpResponse{503, "text/plain; charset=utf-8",
                        "profiler not running (start nas_cli with --profile-hz "
                        "or --profile-out)\n"};
  double seconds = 0.0;
  const auto it = req.query.find("seconds");
  if (it != req.query.end()) {
    try {
      seconds = std::stod(it->second);
    } catch (const std::exception&) {
      return HttpResponse{400, "text/plain; charset=utf-8", "bad seconds\n"};
    }
  }
  seconds = std::clamp(seconds, 0.0, 30.0);

  prof::StackProfile window;
  if (seconds > 0.0) {
    // Window diff: two cumulative snapshots around a wall-clock sleep.
    // This blocks only the serving thread; sampling continues unperturbed.
    const prof::StackProfile before = profiler_->snapshot();
    std::this_thread::sleep_for(std::chrono::duration<double>(seconds));
    window = profiler_->snapshot();
    window.subtract(before);
  } else {
    window = profiler_->snapshot();
  }
  const prof::SymbolizedProfile sym = prof::symbolize(window);
  std::string body = "# swtnas cpu profile (collapsed stacks)\n# hz " +
                     std::to_string(profiler_->hz()) + "\n# window_s " +
                     json_number(seconds) + "\n# samples " +
                     std::to_string(sym.total_samples) + "\n# dropped " +
                     std::to_string(sym.dropped_samples) + "\n";
  body += prof::to_collapsed(sym);
  return HttpResponse{200, "text/plain; charset=utf-8", std::move(body)};
}

HttpResponse ObservabilityServer::criticalpath_endpoint() {
  SpanTracer& tracer = SpanTracer::global();
  if (!tracer.enabled())
    return HttpResponse{503, "text/plain; charset=utf-8",
                        "span tracing off (start nas_cli with --trace-out)\n"};
  const prof::CriticalPathInput input =
      prof::critical_path_input_from_events(tracer.events());
  if (input.evals.empty())
    return HttpResponse{503, "text/plain; charset=utf-8",
                        "no completed evaluations in the span trace yet\n"};
  const prof::CriticalPathReport report = prof::analyze_critical_path(input);
  return HttpResponse{200, "application/json",
                      prof::critical_path_json(report) + "\n"};
}

}  // namespace swt
