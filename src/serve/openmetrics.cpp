#include "serve/openmetrics.hpp"

#include <cstdlib>
#include <map>
#include <optional>

namespace swt {

namespace {

bool valid_metric_name(std::string_view s) {
  if (s.empty()) return false;
  const auto ok_first = [](char c) {
    return (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') || c == '_' || c == ':';
  };
  if (!ok_first(s[0])) return false;
  for (const char c : s.substr(1))
    if (!ok_first(c) && !(c >= '0' && c <= '9')) return false;
  return true;
}

bool parse_value(std::string_view s, double* out) {
  if (s == "NaN" || s == "+Inf" || s == "-Inf") {
    *out = s == "NaN" ? 0.0 : (s[0] == '+' ? 1e308 : -1e308);
    return true;
  }
  if (s.empty()) return false;
  char* end = nullptr;
  const std::string copy(s);
  *out = std::strtod(copy.c_str(), &end);
  return end != nullptr && *end == '\0';
}

/// Family a sample name belongs to: strip the exposition suffixes.
std::string family_of(std::string_view sample_name) {
  for (const std::string_view suffix : {"_total", "_bucket", "_sum", "_count"}) {
    if (sample_name.size() > suffix.size() &&
        sample_name.substr(sample_name.size() - suffix.size()) == suffix)
      return std::string(sample_name.substr(0, sample_name.size() - suffix.size()));
  }
  return std::string(sample_name);
}

struct FamilyState {
  std::string type;
  bool saw_sample = false;
  // Histogram bookkeeping:
  double last_bucket_count = -1.0;
  bool saw_inf_bucket = false;
  long declared_line = 0;
};

}  // namespace

OpenMetricsReport validate_openmetrics(std::string_view text) {
  OpenMetricsReport report;
  std::map<std::string, FamilyState> families;
  const auto issue = [&report](long line, std::string msg) {
    report.issues.push_back({line, std::move(msg)});
  };

  long line_no = 0;
  bool saw_eof = false;
  std::size_t pos = 0;
  while (pos <= text.size()) {
    std::size_t eol = text.find('\n', pos);
    if (eol == std::string_view::npos) eol = text.size();
    const std::string_view line = text.substr(pos, eol - pos);
    const bool last_chunk = eol >= text.size();
    pos = eol + 1;
    if (line.empty() && last_chunk) break;
    ++line_no;
    if (saw_eof) {
      issue(line_no, "content after # EOF");
      break;
    }
    if (line.empty()) {
      issue(line_no, "blank line (not allowed in OpenMetrics)");
      continue;
    }

    if (line[0] == '#') {
      // "# TYPE <name> <type>" / "# HELP <name> <text>" / "# EOF"
      if (line == "# EOF") {
        saw_eof = true;
        continue;
      }
      if (line.rfind("# TYPE ", 0) == 0) {
        const std::string_view rest = line.substr(7);
        const std::size_t sp = rest.find(' ');
        if (sp == std::string_view::npos) {
          issue(line_no, "malformed # TYPE line");
          continue;
        }
        const std::string name(rest.substr(0, sp));
        const std::string type(rest.substr(sp + 1));
        if (!valid_metric_name(name)) issue(line_no, "invalid family name: " + name);
        if (type != "counter" && type != "gauge" && type != "histogram" &&
            type != "summary" && type != "unknown" && type != "info" &&
            type != "stateset" && type != "gaugehistogram")
          issue(line_no, "unknown metric type: " + type);
        auto [it, inserted] = families.try_emplace(name);
        if (!inserted && !it->second.type.empty())
          issue(line_no, "duplicate # TYPE for family " + name + " (first at line " +
                             std::to_string(it->second.declared_line) + ")");
        it->second.type = type;
        it->second.declared_line = line_no;
        ++report.families;
        continue;
      }
      if (line.rfind("# HELP ", 0) == 0 || line.rfind("# UNIT ", 0) == 0) continue;
      issue(line_no, "unrecognized comment line (only TYPE/HELP/UNIT/EOF)");
      continue;
    }

    // Sample line: name[{labels}] value [timestamp]
    std::size_t name_end = 0;
    while (name_end < line.size() && line[name_end] != '{' && line[name_end] != ' ')
      ++name_end;
    const std::string name(line.substr(0, name_end));
    if (!valid_metric_name(name)) {
      issue(line_no, "invalid metric name: " + name);
      continue;
    }
    std::string le_label;
    std::size_t value_start = name_end;
    if (value_start < line.size() && line[value_start] == '{') {
      const std::size_t close = line.find('}', value_start);
      if (close == std::string_view::npos) {
        issue(line_no, "unterminated label set");
        continue;
      }
      const std::string_view labels = line.substr(value_start + 1, close - value_start - 1);
      const std::size_t le = labels.find("le=\"");
      if (le != std::string_view::npos) {
        const std::size_t end_quote = labels.find('"', le + 4);
        if (end_quote != std::string_view::npos)
          le_label = std::string(labels.substr(le + 4, end_quote - le - 4));
      }
      value_start = close + 1;
    }
    if (value_start >= line.size() || line[value_start] != ' ') {
      issue(line_no, "missing value separator after metric name");
      continue;
    }
    const std::string_view value_part = line.substr(value_start + 1);
    const std::size_t value_end = value_part.find(' ');  // optional timestamp after
    double value = 0.0;
    if (!parse_value(value_part.substr(0, value_end), &value)) {
      issue(line_no, "unparseable sample value: " + std::string(value_part));
      continue;
    }
    ++report.samples;

    const std::string family = family_of(name);
    const auto it = families.find(family);
    // A sample whose name carries no suffix may still belong to a suffix-less
    // gauge family declared under the full name.
    const auto direct = families.find(name);
    FamilyState* fam = it != families.end()
                           ? &it->second
                           : (direct != families.end() ? &direct->second : nullptr);
    if (fam == nullptr) {
      issue(line_no, "sample without a preceding # TYPE: " + name);
      continue;
    }
    fam->saw_sample = true;
    if (fam->type == "counter") {
      if (name.size() < 6 || name.compare(name.size() - 6, 6, "_total") != 0)
        issue(line_no, "counter sample must end in _total: " + name);
      if (value < 0.0) issue(line_no, "negative counter value: " + name);
    } else if (fam->type == "histogram") {
      if (name.size() > 7 && name.compare(name.size() - 7, 7, "_bucket") == 0) {
        if (le_label.empty()) {
          issue(line_no, "histogram bucket without le label: " + name);
        } else {
          if (value < fam->last_bucket_count)
            issue(line_no, "non-cumulative bucket counts in " + family);
          fam->last_bucket_count = value;
          if (le_label == "+Inf") {
            fam->saw_inf_bucket = true;
            fam->last_bucket_count = -1.0;  // next histogram block starts fresh
          }
        }
      }
    }
  }

  if (!saw_eof) issue(0, "missing final # EOF line");
  for (const auto& [name, fam] : families) {
    if (fam.type == "histogram" && fam.saw_sample && !fam.saw_inf_bucket)
      issue(0, "histogram " + name + " lacks a +Inf bucket");
  }
  return report;
}

}  // namespace swt
