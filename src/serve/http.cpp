#include "serve/http.hpp"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <stdexcept>

#include "common/log.hpp"

namespace swt {

const char* http_status_reason(int status) noexcept {
  switch (status) {
    case 200: return "OK";
    case 400: return "Bad Request";
    case 404: return "Not Found";
    case 405: return "Method Not Allowed";
    case 431: return "Request Header Fields Too Large";
    case 500: return "Internal Server Error";
    case 503: return "Service Unavailable";
    default: return "Unknown";
  }
}

bool parse_http_request(const std::string& head, HttpRequest* out) {
  *out = HttpRequest{};
  const std::size_t line_end = head.find("\r\n");
  const std::string request_line =
      line_end == std::string::npos ? head : head.substr(0, line_end);

  // "METHOD SP target SP HTTP/1.x" — exactly three space-separated tokens.
  const std::size_t sp1 = request_line.find(' ');
  const std::size_t sp2 =
      sp1 == std::string::npos ? std::string::npos : request_line.find(' ', sp1 + 1);
  if (sp1 == std::string::npos || sp2 == std::string::npos || sp1 == 0) return false;
  out->method = request_line.substr(0, sp1);
  std::string target = request_line.substr(sp1 + 1, sp2 - sp1 - 1);
  const std::string version = request_line.substr(sp2 + 1);
  if (version.rfind("HTTP/1.", 0) != 0) return false;
  if (target.empty() || target[0] != '/') return false;
  for (const char c : out->method)
    if (c < 'A' || c > 'Z') return false;

  const std::size_t qmark = target.find('?');
  out->path = target.substr(0, qmark);
  if (qmark != std::string::npos) {
    std::string qs = target.substr(qmark + 1);
    std::size_t start = 0;
    while (start <= qs.size()) {
      std::size_t amp = qs.find('&', start);
      if (amp == std::string::npos) amp = qs.size();
      const std::string pair = qs.substr(start, amp - start);
      if (!pair.empty()) {
        const std::size_t eq = pair.find('=');
        if (eq == std::string::npos)
          out->query[pair] = "";
        else
          out->query[pair.substr(0, eq)] = pair.substr(eq + 1);
      }
      start = amp + 1;
    }
  }

  // Header lines: "Name: value", names lower-cased; a malformed line
  // (no colon) fails the whole request.
  std::size_t pos = line_end == std::string::npos ? head.size() : line_end + 2;
  while (pos < head.size()) {
    std::size_t eol = head.find("\r\n", pos);
    if (eol == std::string::npos) eol = head.size();
    const std::string line = head.substr(pos, eol - pos);
    pos = eol + 2;
    if (line.empty()) break;
    const std::size_t colon = line.find(':');
    if (colon == std::string::npos || colon == 0) return false;
    std::string name = line.substr(0, colon);
    for (char& c : name)
      if (c >= 'A' && c <= 'Z') c = static_cast<char>(c - 'A' + 'a');
    std::size_t vstart = colon + 1;
    while (vstart < line.size() && (line[vstart] == ' ' || line[vstart] == '\t'))
      ++vstart;
    out->headers[name] = line.substr(vstart);
  }
  return true;
}

namespace {

void send_all(int fd, const std::string& data) {
  std::size_t sent = 0;
  while (sent < data.size()) {
    // MSG_NOSIGNAL: a client that dropped the connection mid-response must
    // surface as EPIPE here, not as a process-killing SIGPIPE.
    const ssize_t n =
        ::send(fd, data.data() + sent, data.size() - sent, MSG_NOSIGNAL);
    if (n <= 0) return;  // peer gone; nothing sensible left to do
    sent += static_cast<std::size_t>(n);
  }
}

void send_response(int fd, const HttpResponse& resp, bool include_body) {
  std::string head = "HTTP/1.1 " + std::to_string(resp.status) + ' ' +
                     http_status_reason(resp.status) +
                     "\r\nContent-Type: " + resp.content_type +
                     "\r\nContent-Length: " + std::to_string(resp.body.size()) +
                     "\r\nConnection: close\r\n\r\n";
  if (include_body) head += resp.body;
  send_all(fd, head);
}

}  // namespace

HttpServer::HttpServer(Config cfg, Handler handler)
    : cfg_(std::move(cfg)), handler_(std::move(handler)) {
  if (cfg_.num_threads < 1)
    throw std::invalid_argument("HttpServer: need >= 1 worker thread");
  if (!handler_) throw std::invalid_argument("HttpServer: handler required");
}

HttpServer::~HttpServer() { stop(); }

void HttpServer::start() {
  if (running_.load()) return;
  listen_fd_ = ::socket(AF_INET, SOCK_STREAM, 0);
  if (listen_fd_ < 0)
    throw std::runtime_error("HttpServer: socket() failed: " +
                             std::string(std::strerror(errno)));
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(static_cast<std::uint16_t>(cfg_.port));
  if (::inet_pton(AF_INET, cfg_.bind_address.c_str(), &addr.sin_addr) != 1) {
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: bad bind address " + cfg_.bind_address);
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) != 0 ||
      ::listen(listen_fd_, cfg_.backlog) != 0) {
    const std::string err = std::strerror(errno);
    ::close(listen_fd_);
    listen_fd_ = -1;
    throw std::runtime_error("HttpServer: cannot listen on " + cfg_.bind_address + ':' +
                             std::to_string(cfg_.port) + ": " + err);
  }
  sockaddr_in bound{};
  socklen_t len = sizeof(bound);
  ::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&bound), &len);
  port_.store(ntohs(bound.sin_port), std::memory_order_relaxed);

  {
    std::scoped_lock lock(queue_mutex_);
    stopping_ = false;
  }
  running_.store(true, std::memory_order_relaxed);
  accept_thread_ = std::thread([this] { accept_loop(); });
  workers_.reserve(static_cast<std::size_t>(cfg_.num_threads));
  for (int i = 0; i < cfg_.num_threads; ++i)
    workers_.emplace_back([this] { worker_loop(); });
  log_info("telemetry server listening on ", cfg_.bind_address, ":", port());
}

void HttpServer::stop() {
  if (!running_.exchange(false)) return;
  // Unblock accept(): shutdown() makes the blocked call return on Linux;
  // close() releases the fd.
  if (listen_fd_ >= 0) {
    ::shutdown(listen_fd_, SHUT_RDWR);
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  {
    std::scoped_lock lock(queue_mutex_);
    stopping_ = true;
  }
  queue_cv_.notify_all();
  if (accept_thread_.joinable()) accept_thread_.join();
  for (std::thread& t : workers_)
    if (t.joinable()) t.join();
  workers_.clear();
  // Connections accepted but never picked up get closed, not served.
  std::scoped_lock lock(queue_mutex_);
  for (const int fd : pending_) ::close(fd);
  pending_.clear();
}

void HttpServer::accept_loop() {
  while (running_.load(std::memory_order_relaxed)) {
    const int fd = ::accept(listen_fd_, nullptr, nullptr);
    if (fd < 0) {
      if (!running_.load(std::memory_order_relaxed)) break;
      if (errno == EINTR || errno == ECONNABORTED) continue;
      break;  // listener is gone; stop() will join us
    }
    timeval tv{};
    tv.tv_sec = static_cast<long>(cfg_.read_timeout_s);
    tv.tv_usec = static_cast<long>((cfg_.read_timeout_s - double(tv.tv_sec)) * 1e6);
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
    {
      std::scoped_lock lock(queue_mutex_);
      pending_.push_back(fd);
    }
    queue_cv_.notify_one();
  }
}

void HttpServer::worker_loop() {
  for (;;) {
    int fd = -1;
    {
      std::unique_lock lock(queue_mutex_);
      queue_cv_.wait(lock, [this] { return stopping_ || !pending_.empty(); });
      if (pending_.empty()) return;  // stopping and drained
      fd = pending_.front();
      pending_.pop_front();
    }
    handle_connection(fd);
    ::close(fd);
  }
}

void HttpServer::handle_connection(int fd) {
  // Read until the head terminator or one of the rejection conditions.
  std::string head;
  char buf[2048];
  bool oversized = false;
  while (head.find("\r\n\r\n") == std::string::npos) {
    const ssize_t n = ::recv(fd, buf, sizeof(buf), 0);
    if (n <= 0) {  // peer closed early or read timeout
      rejected_.fetch_add(1, std::memory_order_relaxed);
      return;
    }
    head.append(buf, static_cast<std::size_t>(n));
    if (head.size() > cfg_.max_request_bytes) {
      oversized = true;
      break;
    }
  }
  if (oversized) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    send_response(fd, HttpResponse{431, "text/plain; charset=utf-8",
                                   "request head too large\n"},
                  /*include_body=*/true);
    return;
  }
  HttpRequest req;
  if (!parse_http_request(head.substr(0, head.find("\r\n\r\n") + 4), &req)) {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    send_response(fd, HttpResponse{400, "text/plain; charset=utf-8",
                                   "malformed request\n"},
                  /*include_body=*/true);
    return;
  }
  if (req.method != "GET" && req.method != "HEAD") {
    rejected_.fetch_add(1, std::memory_order_relaxed);
    send_response(fd, HttpResponse{405, "text/plain; charset=utf-8",
                                   "only GET is supported\n"},
                  /*include_body=*/true);
    return;
  }
  HttpResponse resp;
  try {
    resp = handler_(req);
  } catch (const std::exception& e) {
    resp = HttpResponse{500, "text/plain; charset=utf-8",
                        std::string("handler error: ") + e.what() + "\n"};
  }
  served_.fetch_add(1, std::memory_order_relaxed);
  send_response(fd, resp, /*include_body=*/req.method != "HEAD");
}

}  // namespace swt
