// The live telemetry endpoints, composed over HttpServer.
//
//   GET /          endpoint index (text)
//   GET /metrics   MetricsRegistry snapshot, OpenMetrics text format
//   GET /healthz   200 {"status":"ok"} | 503 {"status":"...","reason":...}
//                  from the HealthWatchdog (200 when no watchdog is wired)
//   GET /status    run JSON: id/app/mode, best score, evals done/in-flight,
//                  transfer hit rate, Kendall tau, virtual time, per-worker
//                  busy/idle — all read from the registry gauges run_search
//                  publishes and the watchdog's event-derived worker table
//   GET /series    ?name=<series>[&max_points=N][&format=csv] from the
//                  TimeSeriesStore; without ?name, lists available series
//   GET /profile   ?seconds=N collapsed-stack CPU profile (N=0 or absent:
//                  cumulative since start; N>0: sample for a window).  503
//                  when no profiler is attached or it is not running
//   GET /criticalpath  critical-path analysis JSON rebuilt from the live
//                  span tracer; 503 when tracing is off or has no evals
//
// Every handler is a pure reader of thread-safe telemetry state; requests
// can race a live search freely (test_serve hammers exactly that).
#pragma once

#include <memory>
#include <string>

#include "serve/http.hpp"

namespace swt {

class HealthWatchdog;
class MetricsRegistry;
class TimeSeriesStore;

namespace prof {
class CpuProfiler;
}

class ObservabilityServer {
 public:
  /// Static facts about the run being served, shown verbatim in /status.
  struct StatusInfo {
    std::string run_id;
    std::string app;
    std::string mode;
    long n_evals = 0;
  };

  /// `store` and `watchdog` may be null (those endpoints degrade
  /// gracefully); non-null pointers must outlive the server.
  ObservabilityServer(HttpServer::Config cfg, MetricsRegistry& registry,
                      TimeSeriesStore* store, HealthWatchdog* watchdog,
                      StatusInfo info);

  /// Attach the sampling profiler behind GET /profile (null detaches; the
  /// endpoint then answers 503).  The profiler must outlive the server.
  void set_profiler(prof::CpuProfiler* profiler) { profiler_ = profiler; }

  void start();
  void stop();
  [[nodiscard]] int port() const noexcept;
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// Route one request — the handler behind the socket server, exposed so
  /// tests and bench_overhead can price endpoints without a TCP round trip.
  [[nodiscard]] HttpResponse handle(const HttpRequest& req);

 private:
  [[nodiscard]] HttpResponse metrics_endpoint();
  [[nodiscard]] HttpResponse healthz_endpoint();
  [[nodiscard]] HttpResponse status_endpoint();
  [[nodiscard]] HttpResponse series_endpoint(const HttpRequest& req);
  [[nodiscard]] HttpResponse profile_endpoint(const HttpRequest& req);
  [[nodiscard]] HttpResponse criticalpath_endpoint();

  MetricsRegistry& registry_;
  TimeSeriesStore* store_;
  HealthWatchdog* watchdog_;
  prof::CpuProfiler* profiler_ = nullptr;
  StatusInfo info_;
  double start_wall_s_ = 0.0;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace swt
