// The live telemetry endpoints, composed over HttpServer.
//
//   GET /          endpoint index (text)
//   GET /metrics   MetricsRegistry snapshot, OpenMetrics text format
//   GET /healthz   200 {"status":"ok"} | 503 {"status":"...","reason":...}
//                  from the HealthWatchdog (200 when no watchdog is wired)
//   GET /status    run JSON: id/app/mode, best score, evals done/in-flight,
//                  transfer hit rate, Kendall tau, virtual time, per-worker
//                  busy/idle — all read from the registry gauges run_search
//                  publishes and the watchdog's event-derived worker table
//   GET /series    ?name=<series>[&max_points=N][&format=csv] from the
//                  TimeSeriesStore; without ?name, lists available series
//
// Every handler is a pure reader of thread-safe telemetry state; requests
// can race a live search freely (test_serve hammers exactly that).
#pragma once

#include <memory>
#include <string>

#include "serve/http.hpp"

namespace swt {

class HealthWatchdog;
class MetricsRegistry;
class TimeSeriesStore;

class ObservabilityServer {
 public:
  /// Static facts about the run being served, shown verbatim in /status.
  struct StatusInfo {
    std::string run_id;
    std::string app;
    std::string mode;
    long n_evals = 0;
  };

  /// `store` and `watchdog` may be null (those endpoints degrade
  /// gracefully); non-null pointers must outlive the server.
  ObservabilityServer(HttpServer::Config cfg, MetricsRegistry& registry,
                      TimeSeriesStore* store, HealthWatchdog* watchdog,
                      StatusInfo info);

  void start();
  void stop();
  [[nodiscard]] int port() const noexcept;
  [[nodiscard]] std::uint64_t requests_served() const noexcept;

  /// Route one request — the handler behind the socket server, exposed so
  /// tests and bench_overhead can price endpoints without a TCP round trip.
  [[nodiscard]] HttpResponse handle(const HttpRequest& req);

 private:
  [[nodiscard]] HttpResponse metrics_endpoint();
  [[nodiscard]] HttpResponse healthz_endpoint();
  [[nodiscard]] HttpResponse status_endpoint();
  [[nodiscard]] HttpResponse series_endpoint(const HttpRequest& req);

  MetricsRegistry& registry_;
  TimeSeriesStore* store_;
  HealthWatchdog* watchdog_;
  StatusInfo info_;
  double start_wall_s_ = 0.0;
  std::unique_ptr<HttpServer> server_;
};

}  // namespace swt
