// Small OpenMetrics text-format checker.
//
// The /metrics endpoint promises valid OpenMetrics exposition; this module
// is the promise's enforcement — used by the `lint_openmetrics` example in
// CI (scrape → lint → fail the job on drift) and by test_serve.  It checks
// the grammar subset this codebase emits rather than the full spec:
// metric-name syntax, `# TYPE` before samples, counter samples suffixed
// `_total`, histogram `_bucket` series with cumulative counts and a +Inf
// bucket, parseable values (including NaN/+Inf/-Inf), and the mandatory
// final `# EOF`.
#pragma once

#include <string>
#include <string_view>
#include <vector>

namespace swt {

struct OpenMetricsIssue {
  long line = 0;  ///< 1-based; 0 = document-level issue
  std::string message;
};

struct OpenMetricsReport {
  std::vector<OpenMetricsIssue> issues;
  long samples = 0;   ///< sample lines seen
  long families = 0;  ///< # TYPE declarations seen

  [[nodiscard]] bool ok() const noexcept { return issues.empty(); }
};

/// Validate one exposition document.
[[nodiscard]] OpenMetricsReport validate_openmetrics(std::string_view text);

}  // namespace swt
