// Minimal dependency-free HTTP/1.1 server for the telemetry plane.
//
// This is deliberately the first brick of the ROADMAP's NAS-as-a-service
// item: a blocking accept loop on its own thread feeding a small
// fixed-size connection pool, POSIX sockets only, no third-party
// dependency.  Scope is intentionally narrow — GET/HEAD, one request per
// connection (`Connection: close`), bounded request size, read timeouts so
// a half-open client cannot wedge a worker — because every consumer today
// is a scrape loop (`curl`, Prometheus, the CI linter), not a browser
// session.
//
// Threading: start() spawns 1 accept thread + cfg.num_threads connection
// workers; the user handler runs on those workers and must be thread-safe.
// stop() (and the destructor) shuts the listening socket down, drains the
// connection queue and joins every thread, so no callback outlives the
// server object.  The server never touches search state, the virtual clock
// or any RNG — it only reads what the handler exposes.
#pragma once

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

namespace swt {

struct HttpRequest {
  std::string method;  ///< upper-case, e.g. "GET"
  std::string path;    ///< decoded-free path component, e.g. "/series"
  /// Query parameters in order of appearance (no %-decoding beyond '+').
  std::map<std::string, std::string> query;
  /// Header names lower-cased.
  std::map<std::string, std::string> headers;
};

struct HttpResponse {
  int status = 200;
  std::string content_type = "text/plain; charset=utf-8";
  std::string body;
};

/// Standard reason phrase for the handful of statuses this server emits.
[[nodiscard]] const char* http_status_reason(int status) noexcept;

/// Parse the request head (everything before the blank line).  Returns
/// false on malformed input (caller answers 400).  Exposed for tests.
[[nodiscard]] bool parse_http_request(const std::string& head, HttpRequest* out);

class HttpServer {
 public:
  struct Config {
    /// Loopback by default: the telemetry plane is an operator tool, not an
    /// internet-facing service.
    std::string bind_address = "127.0.0.1";
    /// 0 = ephemeral (the OS picks; read it back via port()).
    int port = 0;
    int num_threads = 2;
    int backlog = 16;
    /// Request head cap; longer heads answer 431 and close.
    std::size_t max_request_bytes = 16 * 1024;
    /// Per-connection socket read timeout.
    double read_timeout_s = 5.0;
  };

  using Handler = std::function<HttpResponse(const HttpRequest&)>;

  /// `handler` runs on connection-pool threads; exceptions it throws are
  /// answered as 500 and swallowed.
  HttpServer(Config cfg, Handler handler);
  ~HttpServer();

  HttpServer(const HttpServer&) = delete;
  HttpServer& operator=(const HttpServer&) = delete;

  /// Bind + listen + spawn the accept loop and workers.  Throws
  /// std::runtime_error on bind/listen failure (port in use, ...).
  void start();
  /// Clean shutdown: close the listener, drain queued connections, join
  /// all threads.  Idempotent.
  void stop();

  [[nodiscard]] bool running() const noexcept {
    return running_.load(std::memory_order_relaxed);
  }
  /// The actually bound port (resolves port 0 after start()).
  [[nodiscard]] int port() const noexcept { return port_.load(std::memory_order_relaxed); }

  [[nodiscard]] std::uint64_t requests_served() const noexcept {
    return served_.load(std::memory_order_relaxed);
  }
  /// Requests rejected before the handler ran (400/405/431/timeouts).
  [[nodiscard]] std::uint64_t requests_rejected() const noexcept {
    return rejected_.load(std::memory_order_relaxed);
  }

 private:
  void accept_loop();
  void worker_loop();
  void handle_connection(int fd);

  Config cfg_;
  Handler handler_;
  std::atomic<bool> running_{false};
  std::atomic<int> port_{0};
  std::atomic<std::uint64_t> served_{0};
  std::atomic<std::uint64_t> rejected_{0};
  int listen_fd_ = -1;
  std::thread accept_thread_;
  std::vector<std::thread> workers_;
  std::mutex queue_mutex_;
  std::condition_variable queue_cv_;
  std::deque<int> pending_;  ///< accepted fds awaiting a worker
  bool stopping_ = false;    ///< guarded by queue_mutex_
};

}  // namespace swt
