#include "ckpt/store.hpp"

#include <fstream>
#include <stdexcept>

#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace swt {

namespace {

/// Store-level I/O telemetry: call counts, byte totals, the modelled PFS
/// cost distributions the virtual cluster charges to its event clock, and
/// one ckpt_read / ckpt_write lifecycle event per operation.
void record_io(const char* op, const std::string& key, const IoStats& stats) {
  const bool write = op[0] == 'w';
  if (metrics_enabled()) {
    MetricsRegistry& m = metrics();
    if (write) {
      m.counter("ckpt.put_total").add();
      m.counter("ckpt.bytes_written_total").add(static_cast<std::int64_t>(stats.bytes));
      m.histogram("ckpt.write_cost_seconds").observe(stats.cost_seconds);
    } else {
      m.counter("ckpt.get_total").add();
      m.counter("ckpt.bytes_read_total").add(static_cast<std::int64_t>(stats.bytes));
      m.histogram("ckpt.read_cost_seconds").observe(stats.cost_seconds);
    }
  }
  EventBus& bus = EventBus::global();
  if (bus.enabled())
    bus.emit(write ? EventType::kCkptWrite : EventType::kCkptRead, -1.0, -1, -1,
             {{"key", event_str(key)},
              {"bytes", std::to_string(stats.bytes)},
              {"cost_s", json_number(stats.cost_seconds)}});
}

}  // namespace

CheckpointStore::CheckpointStore(Backend backend, std::filesystem::path dir,
                                 PfsCostModel model, CompressionKind compression)
    : backend_(backend), dir_(std::move(dir)), model_(model), compression_(compression) {
  if (backend_ == Backend::kDisk) {
    if (dir_.empty()) throw std::invalid_argument("CheckpointStore: disk backend needs a dir");
    std::filesystem::create_directories(dir_);
  }
}

std::filesystem::path CheckpointStore::path_for(const std::string& key) const {
  return dir_ / (key + ".swtc");
}

IoStats CheckpointStore::put(const std::string& key, const Checkpoint& ckpt) {
  std::vector<std::byte> bytes = serialize(ckpt, compression_);
  IoStats stats{bytes.size(), model_.write_cost(bytes.size())};
  record_io("write", key, stats);
  std::scoped_lock lock(mutex_);
  sizes_.push_back(bytes.size());
  total_written_ += bytes.size();
  if (backend_ == Backend::kMemory) {
    memory_[key] = std::move(bytes);
  } else {
    std::ofstream out(path_for(key), std::ios::binary | std::ios::trunc);
    if (!out) throw std::runtime_error("CheckpointStore: cannot open " + key + " for write");
    out.write(reinterpret_cast<const char*>(bytes.data()),
              static_cast<std::streamsize>(bytes.size()));
    if (!out) throw std::runtime_error("CheckpointStore: short write for " + key);
    disk_sizes_[key] = bytes.size();
  }
  return stats;
}

std::optional<std::vector<std::byte>> CheckpointStore::read_bytes(
    const std::string& key) const {
  std::scoped_lock lock(mutex_);
  if (backend_ == Backend::kMemory) {
    auto it = memory_.find(key);
    if (it == memory_.end()) return std::nullopt;
    return it->second;
  }
  auto it = disk_sizes_.find(key);
  if (it == disk_sizes_.end()) return std::nullopt;
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) throw std::runtime_error("CheckpointStore: cannot open " + key + " for read");
  std::vector<std::byte> bytes(it->second);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::size_t>(in.gcount()) != bytes.size())
    throw std::runtime_error("CheckpointStore: short read for " + key);
  return bytes;
}

std::pair<Checkpoint, IoStats> CheckpointStore::get(const std::string& key) const {
  std::optional<std::vector<std::byte>> bytes = read_bytes(key);
  if (!bytes.has_value())
    throw std::out_of_range("CheckpointStore: unknown key " + key);
  IoStats stats{bytes->size(), model_.read_cost(bytes->size())};
  record_io("read", key, stats);
  return {deserialize(*bytes), stats};
}

std::optional<std::pair<Checkpoint, IoStats>> CheckpointStore::try_get(
    const std::string& key) const {
  std::optional<std::vector<std::byte>> bytes;
  try {
    bytes = read_bytes(key);
  } catch (const std::exception&) {
    if (metrics_enabled()) metrics().counter("ckpt.read_miss_total").add();
    return std::nullopt;  // unreadable backing file
  }
  if (!bytes.has_value()) {
    if (metrics_enabled()) metrics().counter("ckpt.read_miss_total").add();
    return std::nullopt;
  }
  try {
    IoStats stats{bytes->size(), model_.read_cost(bytes->size())};
    auto result = std::make_pair(deserialize(*bytes), stats);
    record_io("read", key, stats);
    return result;
  } catch (const std::exception&) {
    if (metrics_enabled()) metrics().counter("ckpt.read_miss_total").add();
    return std::nullopt;  // truncated or CRC-corrupt payload
  }
}

bool CheckpointStore::contains(const std::string& key) const {
  std::scoped_lock lock(mutex_);
  return backend_ == Backend::kMemory ? memory_.contains(key) : disk_sizes_.contains(key);
}

std::size_t CheckpointStore::count() const {
  std::scoped_lock lock(mutex_);
  return backend_ == Backend::kMemory ? memory_.size() : disk_sizes_.size();
}

std::vector<std::size_t> CheckpointStore::stored_sizes() const {
  std::scoped_lock lock(mutex_);
  return sizes_;
}

std::size_t CheckpointStore::total_bytes_written() const {
  std::scoped_lock lock(mutex_);
  return total_written_;
}

}  // namespace swt
