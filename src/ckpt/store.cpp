#include "ckpt/store.hpp"

#include <fstream>
#include <stdexcept>

#include "common/fsio.hpp"
#include "obs/events.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"

namespace swt {

namespace {

/// Store-level I/O telemetry: call counts, byte totals, the modelled PFS
/// cost distributions the virtual cluster charges to its event clock, and
/// one ckpt_read / ckpt_write lifecycle event per operation.
void record_io(const char* op, const std::string& key, const IoStats& stats) {
  const bool write = op[0] == 'w';
  if (metrics_enabled()) {
    MetricsRegistry& m = metrics();
    if (write) {
      m.counter("ckpt.put_total").add();
      m.counter("ckpt.bytes_written_total").add(static_cast<std::int64_t>(stats.bytes));
      m.histogram("ckpt.write_cost_seconds").observe(stats.cost_seconds);
    } else {
      m.counter("ckpt.get_total").add();
      m.counter("ckpt.bytes_read_total").add(static_cast<std::int64_t>(stats.bytes));
      m.histogram("ckpt.read_cost_seconds").observe(stats.cost_seconds);
    }
  }
  EventBus& bus = EventBus::global();
  if (bus.enabled())
    bus.emit(write ? EventType::kCkptWrite : EventType::kCkptRead, -1.0, -1, -1,
             {{"key", event_str(key)},
              {"bytes", std::to_string(stats.bytes)},
              {"cost_s", json_number(stats.cost_seconds)}});
}

}  // namespace

CheckpointStore::CheckpointStore(Backend backend, std::filesystem::path dir,
                                 PfsCostModel model, CompressionKind compression,
                                 BankConfig bank)
    : backend_(backend), dir_(std::move(dir)), model_(model), compression_(compression) {
  if (bank.enabled) {
    // The bank owns the directory layout (chunks/ + manifests/ under dir_)
    // and all synchronisation for the banked path; the flat members below
    // stay unused except for the cumulative traffic meters.
    bank_ = std::make_unique<WeightBank>(
        backend_ == Backend::kMemory ? WeightBank::Backend::kMemory
                                     : WeightBank::Backend::kDisk,
        dir_, compression_, bank.byte_budget);
    return;
  }
  if (backend_ == Backend::kDisk) {
    if (dir_.empty()) throw std::invalid_argument("CheckpointStore: disk backend needs a dir");
    std::filesystem::create_directories(dir_);
    // Reopening an existing directory (crash recovery): adopt every blob
    // already on disk and clear staging debris from writers that died
    // mid-put.  Thanks to the tmp+rename write protocol a present ".swtc"
    // file is always a complete rename target; whether its *content* is
    // intact is still verified by the CRC trailer at read time.
    for (const auto& entry : std::filesystem::directory_iterator(dir_)) {
      if (!entry.is_regular_file()) continue;
      const std::filesystem::path& p = entry.path();
      if (p.extension() == ".tmp") {
        std::error_code ec;
        std::filesystem::remove(p, ec);
      } else if (p.extension() == ".swtc") {
        disk_sizes_[p.stem().string()] = static_cast<std::size_t>(entry.file_size());
      }
    }
  }
}

std::filesystem::path CheckpointStore::path_for(const std::string& key) const {
  return dir_ / (key + ".swtc");
}

IoStats CheckpointStore::put(const std::string& key, const Checkpoint& ckpt) {
  if (bank_) {
    // Only first-seen chunk bytes plus the manifest travel to the PFS; a
    // put whose tensors all dedupe against resident chunks is priced at
    // manifest cost.  bytes_moved() is a pure function of bank *content*,
    // which concurrent same-wavefront evals never share (distinct RNG
    // streams + training), so the charge is order-independent and the
    // trace stays bit-reproducible across thread counts.
    const BankPutStats put_stats = bank_->put(key, ckpt);
    IoStats stats{put_stats.bytes_moved(), model_.write_cost(put_stats.bytes_moved())};
    record_io("write", key, stats);
    std::scoped_lock lock(mutex_);
    sizes_.push_back(stats.bytes);
    total_written_ += stats.bytes;
    return stats;
  }
  std::vector<std::byte> bytes = serialize(ckpt, compression_);
  IoStats stats{bytes.size(), model_.write_cost(bytes.size())};
  record_io("write", key, stats);
  std::scoped_lock lock(mutex_);
  sizes_.push_back(bytes.size());
  total_written_ += bytes.size();
  if (backend_ == Backend::kMemory) {
    memory_[key] = std::move(bytes);
  } else {
    // Staged through a tmp sibling and renamed into place: readers (and any
    // process that dies mid-put, or two puts racing on the same key) see
    // either the complete old blob or the complete new blob, never a torn
    // file.  The fsync pair makes the blob durable before put() returns —
    // the ordering the run journal relies on (a journaled attempt implies
    // its checkpoint survived).
    fsio::atomic_write_file(path_for(key), bytes.data(), bytes.size());
    disk_sizes_[key] = bytes.size();
  }
  return stats;
}

bool CheckpointStore::remove(const std::string& key) {
  if (bank_) return bank_->remove(key);
  std::scoped_lock lock(mutex_);
  if (backend_ == Backend::kMemory) return memory_.erase(key) > 0;
  const bool known = disk_sizes_.erase(key) > 0;
  std::error_code ec;
  const bool removed = std::filesystem::remove(path_for(key), ec);
  // A leftover ".tmp" sibling (writer killed between staging and rename)
  // must not survive the key it belongs to.
  std::filesystem::remove(fsio::tmp_sibling(path_for(key)), ec);
  return known || removed;
}

std::optional<std::vector<std::byte>> CheckpointStore::read_bytes(
    const std::string& key) const {
  std::scoped_lock lock(mutex_);
  if (backend_ == Backend::kMemory) {
    auto it = memory_.find(key);
    if (it == memory_.end()) return std::nullopt;
    return it->second;
  }
  auto it = disk_sizes_.find(key);
  if (it == disk_sizes_.end()) return std::nullopt;
  std::ifstream in(path_for(key), std::ios::binary);
  if (!in) throw std::runtime_error("CheckpointStore: cannot open " + key + " for read");
  std::vector<std::byte> bytes(it->second);
  in.read(reinterpret_cast<char*>(bytes.data()),
          static_cast<std::streamsize>(bytes.size()));
  if (static_cast<std::size_t>(in.gcount()) != bytes.size())
    throw std::runtime_error("CheckpointStore: short read for " + key);
  return bytes;
}

std::pair<Checkpoint, IoStats> CheckpointStore::get(const std::string& key) const {
  if (bank_) {
    std::size_t manifest_bytes = 0;
    std::optional<Checkpoint> ckpt = bank_->try_get(key, &manifest_bytes);
    if (!ckpt.has_value()) {
      if (!bank_->contains(key))
        throw std::out_of_range("CheckpointStore: unknown key " + key);
      throw std::runtime_error("CheckpointStore: unreadable banked checkpoint " + key);
    }
    // A provider lookup is a cache hit: the chunks it needs were resident
    // since the provider's own put, so only the manifest crosses the PFS.
    IoStats stats{manifest_bytes, model_.read_cost(manifest_bytes)};
    record_io("read", key, stats);
    return {*std::move(ckpt), stats};
  }
  std::optional<std::vector<std::byte>> bytes = read_bytes(key);
  if (!bytes.has_value())
    throw std::out_of_range("CheckpointStore: unknown key " + key);
  IoStats stats{bytes->size(), model_.read_cost(bytes->size())};
  record_io("read", key, stats);
  return {deserialize(*bytes), stats};
}

std::optional<std::pair<Checkpoint, IoStats>> CheckpointStore::try_get(
    const std::string& key) const {
  if (bank_) {
    std::size_t manifest_bytes = 0;
    std::optional<Checkpoint> ckpt = bank_->try_get(key, &manifest_bytes);
    if (!ckpt.has_value()) {
      if (metrics_enabled()) metrics().counter("ckpt.read_miss_total").add();
      return std::nullopt;  // unknown key, or evicted / corrupt chunk
    }
    IoStats stats{manifest_bytes, model_.read_cost(manifest_bytes)};
    record_io("read", key, stats);
    return std::make_pair(*std::move(ckpt), stats);
  }
  std::optional<std::vector<std::byte>> bytes;
  try {
    bytes = read_bytes(key);
  } catch (const std::exception&) {
    if (metrics_enabled()) metrics().counter("ckpt.read_miss_total").add();
    return std::nullopt;  // unreadable backing file
  }
  if (!bytes.has_value()) {
    if (metrics_enabled()) metrics().counter("ckpt.read_miss_total").add();
    return std::nullopt;
  }
  try {
    IoStats stats{bytes->size(), model_.read_cost(bytes->size())};
    auto result = std::make_pair(deserialize(*bytes), stats);
    record_io("read", key, stats);
    return result;
  } catch (const std::exception&) {
    if (metrics_enabled()) metrics().counter("ckpt.read_miss_total").add();
    return std::nullopt;  // truncated or CRC-corrupt payload
  }
}

bool CheckpointStore::contains(const std::string& key) const {
  if (bank_) return bank_->contains(key);
  std::scoped_lock lock(mutex_);
  return backend_ == Backend::kMemory ? memory_.contains(key) : disk_sizes_.contains(key);
}

std::size_t CheckpointStore::count() const {
  if (bank_) return bank_->count();
  std::scoped_lock lock(mutex_);
  return backend_ == Backend::kMemory ? memory_.size() : disk_sizes_.size();
}

std::size_t CheckpointStore::live_bytes() const {
  if (bank_) {
    const BankStats s = bank_->stats();
    return s.resident_chunk_bytes + s.manifest_bytes;
  }
  std::scoped_lock lock(mutex_);
  std::size_t total = 0;
  if (backend_ == Backend::kMemory) {
    for (const auto& [key, bytes] : memory_) total += bytes.size();
  } else {
    for (const auto& [key, size] : disk_sizes_) total += size;
  }
  return total;
}

std::vector<std::size_t> CheckpointStore::stored_sizes() const {
  std::scoped_lock lock(mutex_);
  return sizes_;
}

std::size_t CheckpointStore::total_bytes_written() const {
  std::scoped_lock lock(mutex_);
  return total_written_;
}

}  // namespace swt
