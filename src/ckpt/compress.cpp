#include "ckpt/compress.hpp"

#include <algorithm>
#include <bit>
#include <cmath>
#include <cstring>
#include <limits>
#include <stdexcept>

namespace swt {

const char* to_string(CompressionKind k) noexcept {
  switch (k) {
    case CompressionKind::kNone: return "none";
    case CompressionKind::kFp16: return "fp16";
    case CompressionKind::kQuant8: return "quant8";
  }
  return "?";
}

std::uint16_t float_to_half(float f) noexcept {
  const std::uint32_t bits = std::bit_cast<std::uint32_t>(f);
  const std::uint32_t sign = (bits >> 16) & 0x8000u;
  const std::int32_t exponent = static_cast<std::int32_t>((bits >> 23) & 0xFF) - 127 + 15;
  std::uint32_t mantissa = bits & 0x7FFFFFu;

  if (((bits >> 23) & 0xFF) == 0xFF) {
    // Inf / NaN.
    return static_cast<std::uint16_t>(sign | 0x7C00u | (mantissa ? 0x200u : 0u));
  }
  if (exponent >= 0x1F) {
    // Overflow to infinity.
    return static_cast<std::uint16_t>(sign | 0x7C00u);
  }
  if (exponent <= 0) {
    // Subnormal or underflow to zero.
    if (exponent < -10) return static_cast<std::uint16_t>(sign);
    mantissa |= 0x800000u;  // implicit leading 1
    const int shift = 14 - exponent;
    std::uint32_t half_mantissa = mantissa >> shift;
    // Round to nearest even.
    const std::uint32_t remainder = mantissa & ((1u << shift) - 1);
    const std::uint32_t halfway = 1u << (shift - 1);
    if (remainder > halfway || (remainder == halfway && (half_mantissa & 1)))
      ++half_mantissa;
    return static_cast<std::uint16_t>(sign | half_mantissa);
  }
  std::uint32_t half = sign | (static_cast<std::uint32_t>(exponent) << 10) | (mantissa >> 13);
  // Round to nearest even on the 13 dropped bits.
  const std::uint32_t remainder = mantissa & 0x1FFFu;
  if (remainder > 0x1000u || (remainder == 0x1000u && (half & 1))) ++half;
  return static_cast<std::uint16_t>(half);
}

float half_to_float(std::uint16_t h) noexcept {
  const std::uint32_t sign = (static_cast<std::uint32_t>(h) & 0x8000u) << 16;
  const std::uint32_t exponent = (h >> 10) & 0x1Fu;
  std::uint32_t mantissa = h & 0x3FFu;
  std::uint32_t bits;
  if (exponent == 0) {
    if (mantissa == 0) {
      bits = sign;  // signed zero
    } else {
      // Subnormal: normalise.
      int e = -1;
      do {
        ++e;
        mantissa <<= 1;
      } while ((mantissa & 0x400u) == 0);
      mantissa &= 0x3FFu;
      bits = sign | (static_cast<std::uint32_t>(127 - 15 - e) << 23) | (mantissa << 13);
    }
  } else if (exponent == 0x1F) {
    bits = sign | 0x7F800000u | (mantissa << 13);  // Inf / NaN
  } else {
    bits = sign | ((exponent - 15 + 127) << 23) | (mantissa << 13);
  }
  return std::bit_cast<float>(bits);
}

std::size_t encoded_size(CompressionKind kind, std::size_t count) noexcept {
  switch (kind) {
    case CompressionKind::kNone: return count * sizeof(float);
    case CompressionKind::kFp16: return count * sizeof(std::uint16_t);
    case CompressionKind::kQuant8: return 2 * sizeof(float) + count;  // scale, lo, bytes
  }
  return 0;
}

double max_abs_error_bound(CompressionKind kind, double max_abs) noexcept {
  // kNone is a bit-exact memcpy, so its bound is 0 even for NaN/Inf inputs.
  // The lossy codecs saturate non-finite values deterministically (fp16
  // keeps Inf/NaN natively; quant8 pins them to the range endpoints), so no
  // finite bound exists once max_abs itself is non-finite.
  if (!std::isfinite(max_abs) && kind != CompressionKind::kNone)
    return std::numeric_limits<double>::infinity();
  switch (kind) {
    case CompressionKind::kNone: return 0.0;
    case CompressionKind::kFp16: return max_abs * 0x1.0p-11 + 1e-24;  // half ulp at value
    case CompressionKind::kQuant8: return (2.0 * max_abs) / 255.0 * 0.5 + 1e-12;
  }
  return 0.0;
}

std::vector<std::byte> encode_values(std::span<const float> values, CompressionKind kind) {
  std::vector<std::byte> out(encoded_size(kind, values.size()));
  switch (kind) {
    case CompressionKind::kNone: {
      std::memcpy(out.data(), values.data(), out.size());
      return out;
    }
    case CompressionKind::kFp16: {
      auto* dst = reinterpret_cast<std::uint16_t*>(out.data());
      for (std::size_t i = 0; i < values.size(); ++i) dst[i] = float_to_half(values[i]);
      return out;
    }
    case CompressionKind::kQuant8: {
      // The quantisation range is computed over *finite* values only: one
      // stray NaN or Inf must not poison lo/hi (NaN propagates through
      // min/max, and an Inf range makes scale Inf) and silently turn the
      // whole tensor into garbage.  Non-finite values saturate
      // deterministically instead: NaN and -Inf to bin 0, +Inf to bin 255.
      float lo = 0.0f, hi = 0.0f;
      bool any_finite = false;
      for (float v : values) {
        if (!std::isfinite(v)) continue;
        if (!any_finite) {
          lo = hi = v;
          any_finite = true;
        } else {
          lo = std::min(lo, v);
          hi = std::max(hi, v);
        }
      }
      const float range = hi - lo;
      const float scale = range > 0.0f ? range / 255.0f : 1.0f;
      std::memcpy(out.data(), &scale, sizeof scale);
      std::memcpy(out.data() + sizeof scale, &lo, sizeof lo);
      auto* dst = reinterpret_cast<std::uint8_t*>(out.data() + 2 * sizeof(float));
      // In the degenerate range (constant or no finite values, lo == hi and
      // scale falls back to 1) only bin 0 decodes to hi, so saturating +Inf
      // to bin 255 there would decode to lo + 255 instead of the endpoint.
      const std::uint8_t hi_bin = range > 0.0f ? 255 : 0;
      for (std::size_t i = 0; i < values.size(); ++i) {
        const float v = values[i];
        if (!std::isfinite(v)) {
          dst[i] = v > 0.0f ? hi_bin : 0;  // +Inf high, NaN and -Inf low
          continue;
        }
        const float q = std::round((v - lo) / scale);
        dst[i] = static_cast<std::uint8_t>(std::clamp(q, 0.0f, 255.0f));
      }
      return out;
    }
  }
  throw std::logic_error("encode_values: unknown compression kind");
}

std::vector<float> decode_values(std::span<const std::byte> bytes, std::size_t count,
                                 CompressionKind kind) {
  if (bytes.size() != encoded_size(kind, count))
    throw std::runtime_error("decode_values: payload size mismatch");
  std::vector<float> out(count);
  switch (kind) {
    case CompressionKind::kNone: {
      std::memcpy(out.data(), bytes.data(), bytes.size());
      return out;
    }
    case CompressionKind::kFp16: {
      const auto* src = reinterpret_cast<const std::uint16_t*>(bytes.data());
      for (std::size_t i = 0; i < count; ++i) out[i] = half_to_float(src[i]);
      return out;
    }
    case CompressionKind::kQuant8: {
      float scale = 0.0f, lo = 0.0f;
      std::memcpy(&scale, bytes.data(), sizeof scale);
      std::memcpy(&lo, bytes.data() + sizeof scale, sizeof lo);
      const auto* src = reinterpret_cast<const std::uint8_t*>(bytes.data() + 2 * sizeof(float));
      for (std::size_t i = 0; i < count; ++i)
        out[i] = lo + scale * static_cast<float>(src[i]);
      return out;
    }
  }
  throw std::logic_error("decode_values: unknown compression kind");
}

}  // namespace swt
