#include "ckpt/swh5.hpp"

#include <fstream>
#include <sstream>
#include <utility>

#include "ckpt/weight_bank.hpp"
#include "ckpt/wire.hpp"
#include "common/fsio.hpp"

namespace swt::swh5 {

namespace {

constexpr std::uint32_t kMagic = 0x53574835;  // "SWH5"
constexpr std::uint32_t kVersion = 1;

std::pair<std::string, std::string> split_head(const std::string& path) {
  const auto pos = path.find('/');
  if (pos == std::string::npos) return {path, ""};
  return {path.substr(0, pos), path.substr(pos + 1)};
}

void check_simple_name(const std::string& name, const char* what) {
  if (name.empty() || name.find('/') != std::string::npos)
    throw std::invalid_argument(std::string("swh5: invalid ") + what + " name '" + name +
                                "'");
}

}  // namespace

Group& Group::create_group(const std::string& path) {
  const auto [head, rest] = split_head(path);
  check_simple_name(head, "group");
  Group& child = groups_[head];
  return rest.empty() ? child : child.create_group(rest);
}

void Group::create_dataset(const std::string& name, Tensor value) {
  check_simple_name(name, "dataset");
  datasets_[name] = std::move(value);
}

void Group::set_attr(const std::string& name, Attribute value) {
  check_simple_name(name, "attribute");
  attrs_[name] = std::move(value);
}

bool Group::has_group(const std::string& path) const {
  const auto [head, rest] = split_head(path);
  const auto it = groups_.find(head);
  if (it == groups_.end()) return false;
  return rest.empty() ? true : it->second.has_group(rest);
}

bool Group::has_dataset(const std::string& path) const {
  const auto [head, rest] = split_head(path);
  if (rest.empty()) return datasets_.contains(head);
  const auto it = groups_.find(head);
  return it != groups_.end() && it->second.has_dataset(rest);
}

bool Group::has_attr(const std::string& name) const { return attrs_.contains(name); }

const Group& Group::group(const std::string& path) const {
  const auto [head, rest] = split_head(path);
  const auto it = groups_.find(head);
  if (it == groups_.end()) throw std::out_of_range("swh5: no group '" + head + "'");
  return rest.empty() ? it->second : it->second.group(rest);
}

Group& Group::group(const std::string& path) {
  return const_cast<Group&>(std::as_const(*this).group(path));
}

const Tensor& Group::dataset(const std::string& path) const {
  const auto [head, rest] = split_head(path);
  if (rest.empty()) {
    const auto it = datasets_.find(head);
    if (it == datasets_.end()) throw std::out_of_range("swh5: no dataset '" + head + "'");
    return it->second;
  }
  return group(head).dataset(rest);
}

const Attribute& Group::attr(const std::string& name) const {
  const auto it = attrs_.find(name);
  if (it == attrs_.end()) throw std::out_of_range("swh5: no attribute '" + name + "'");
  return it->second;
}

std::size_t Group::total_datasets() const noexcept {
  std::size_t n = datasets_.size();
  for (const auto& [name, child] : groups_) n += child.total_datasets();
  return n;
}

std::size_t Group::total_payload_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& [name, t] : datasets_)
    n += static_cast<std::size_t>(t.numel()) * sizeof(float);
  for (const auto& [name, child] : groups_) n += child.total_payload_bytes();
  return n;
}

namespace {

void write_group(wire::Writer& w, const Group& g) {
  w.u64(g.attrs().size());
  for (const auto& [name, value] : g.attrs()) {
    w.str(name);
    w.u8(static_cast<std::uint8_t>(value.index()));
    switch (value.index()) {
      case 0: w.i64(std::get<std::int64_t>(value)); break;
      case 1: w.f64(std::get<double>(value)); break;
      default: w.str(std::get<std::string>(value)); break;
    }
  }
  w.u64(g.datasets().size());
  for (const auto& [name, t] : g.datasets()) {
    w.str(name);
    w.u64(t.shape().rank());
    for (std::int64_t d : t.shape().dims()) w.u64(static_cast<std::uint64_t>(d));
    w.raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
  }
  w.u64(g.groups().size());
  for (const auto& [name, child] : g.groups()) {
    w.str(name);
    write_group(w, child);
  }
}

Group read_group(wire::Reader& r, int depth) {
  if (depth > 64) throw std::runtime_error("swh5: group nesting too deep");
  Group g;
  const std::uint64_t n_attrs = r.u64();
  for (std::uint64_t i = 0; i < n_attrs; ++i) {
    const std::string name = r.str();
    switch (r.u8()) {
      case 0: g.set_attr(name, r.i64()); break;
      case 1: g.set_attr(name, r.f64()); break;
      case 2: g.set_attr(name, r.str()); break;
      default: throw std::runtime_error("swh5: unknown attribute tag");
    }
  }
  const std::uint64_t n_datasets = r.u64();
  for (std::uint64_t i = 0; i < n_datasets; ++i) {
    const std::string name = r.str();
    const std::uint64_t rank = r.u64();
    if (rank > 16) throw std::runtime_error("swh5: implausible dataset rank");
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::int64_t>(r.u64());
    Tensor t{Shape(std::move(dims))};
    r.raw(t.data(), static_cast<std::size_t>(t.numel()) * sizeof(float));
    g.create_dataset(name, std::move(t));
  }
  const std::uint64_t n_groups = r.u64();
  for (std::uint64_t i = 0; i < n_groups; ++i) {
    const std::string name = r.str();
    g.create_group(name) = read_group(r, depth + 1);
  }
  return g;
}

}  // namespace

std::vector<std::byte> serialize(const Group& root) {
  wire::Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  write_group(w, root);
  const std::uint32_t crc = crc32(w.bytes().data(), w.size());
  w.u32(crc);
  return std::move(w.bytes());
}

Group deserialize(const std::vector<std::byte>& bytes) {
  if (bytes.size() < 3 * sizeof(std::uint32_t))
    throw std::runtime_error("swh5: stream too short");
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored;
  std::memcpy(&stored, bytes.data() + body, sizeof stored);
  if (crc32(bytes.data(), body) != stored)
    throw std::runtime_error("swh5: CRC mismatch (corrupted file)");

  wire::Reader r(bytes.data(), body);
  if (r.u32() != kMagic) throw std::runtime_error("swh5: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw std::runtime_error("swh5: unsupported version " + std::to_string(version));
  Group root = read_group(r, 0);
  if (r.remaining() != 0) throw std::runtime_error("swh5: trailing garbage");
  return root;
}

void save(const std::filesystem::path& path, const Group& root) {
  const auto bytes = serialize(root);
  // tmp + fsync + rename: a crash mid-save leaves either the previous file
  // or nothing under `path`, never a torn stream (the CRC trailer would
  // catch torn content, but atomicity also preserves the old version).
  fsio::atomic_write_file(path, bytes.data(), bytes.size());
}

Group load(const std::filesystem::path& path) {
  std::ifstream in(path, std::ios::binary | std::ios::ate);
  if (!in) throw std::runtime_error("swh5: cannot open " + path.string());
  const auto size = static_cast<std::size_t>(in.tellg());
  in.seekg(0);
  std::vector<std::byte> bytes(size);
  in.read(reinterpret_cast<char*>(bytes.data()), static_cast<std::streamsize>(size));
  if (static_cast<std::size_t>(in.gcount()) != size)
    throw std::runtime_error("swh5: short read from " + path.string());
  return deserialize(bytes);
}

namespace {

std::string join_ints(const std::vector<int>& values) {
  std::ostringstream os;
  for (std::size_t i = 0; i < values.size(); ++i) {
    if (i) os << '|';
    os << values[i];
  }
  return os.str();
}

std::vector<int> split_ints(const std::string& text) {
  std::vector<int> values;
  if (text.empty()) return values;
  std::istringstream is(text);
  std::string token;
  while (std::getline(is, token, '|')) values.push_back(std::stoi(token));
  return values;
}

}  // namespace

Group from_checkpoint(const Checkpoint& ckpt, bool with_content_hashes) {
  Group root;
  root.set_attr("arch", join_ints(ckpt.arch));
  root.set_attr("score", ckpt.score);
  // Group order in a std::map is alphabetical; the topological tensor order
  // (which defines the shape sequence) is preserved explicitly, as Keras
  // does with its layer_names attribute.
  std::ostringstream order;
  Group& model = root.create_group("model");
  for (std::size_t i = 0; i < ckpt.tensors.size(); ++i) {
    const auto& t = ckpt.tensors[i];
    if (i) order << '\n';
    order << t.name;
    const auto slash = t.name.rfind('/');
    const std::string layer = slash == std::string::npos ? "" : t.name.substr(0, slash);
    const std::string leaf = slash == std::string::npos ? t.name : t.name.substr(slash + 1);
    Group& parent = layer.empty() ? model : model.create_group(layer);
    parent.create_dataset(leaf, t.value);
    // The weight bank's content address, exported so external tooling can
    // dedupe / cross-reference exported SWH5 files against bank chunks.
    if (with_content_hashes) parent.set_attr(leaf + ":content_hash", chunk_id(t.value).hex());
  }
  root.set_attr("tensor_order", order.str());
  return root;
}

Checkpoint to_checkpoint(const Group& root) {
  Checkpoint ckpt;
  ckpt.arch = split_ints(std::get<std::string>(root.attr("arch")));
  ckpt.score = std::get<double>(root.attr("score"));
  const Group& model = root.group("model");
  std::istringstream order(std::get<std::string>(root.attr("tensor_order")));
  std::string name;
  while (std::getline(order, name)) {
    if (name.empty()) continue;
    ckpt.tensors.push_back({name, model.dataset(name)});
  }
  return ckpt;
}

}  // namespace swt::swh5
