// SWH5 — a small hierarchical container format (HDF5 stand-in).
//
// The paper stores candidate checkpoints "in a normal HDF5 format"
// (Section VI); Keras lays a model out as one HDF5 group per layer with one
// dataset per weight tensor plus attributes for metadata.  SWH5 mirrors that
// object model — groups, float datasets and scalar/string attributes,
// addressable by slash-separated paths — over our wire codec with a CRC-32
// trailer.
//
//   swh5::Group root;
//   auto& layer = root.create_group("model/t0/l3");
//   layer.create_dataset("W", tensor);
//   root.set_attr("arch", "[1, 2, 0, 2]");
//   swh5::save("ckpt.swh5", root);
//
// Conversions to/from Checkpoint give a second, inspectable on-disk
// representation of exactly what the transfer engine consumes.
#pragma once

#include <cstdint>
#include <filesystem>
#include <map>
#include <string>
#include <variant>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "tensor/tensor.hpp"

namespace swt::swh5 {

using Attribute = std::variant<std::int64_t, double, std::string>;

class Group {
 public:
  // -- structure -----------------------------------------------------------

  /// Create (or return the existing) child group; `path` may contain
  /// slashes, creating intermediate groups ("model/t0/l3").
  Group& create_group(const std::string& path);

  /// Store a float tensor dataset under `name` (no slashes) in this group.
  void create_dataset(const std::string& name, Tensor value);

  void set_attr(const std::string& name, Attribute value);

  // -- lookup ---------------------------------------------------------------

  [[nodiscard]] bool has_group(const std::string& path) const;
  [[nodiscard]] bool has_dataset(const std::string& path) const;
  [[nodiscard]] bool has_attr(const std::string& name) const;

  /// Throws std::out_of_range when the path does not exist.
  [[nodiscard]] const Group& group(const std::string& path) const;
  [[nodiscard]] Group& group(const std::string& path);
  [[nodiscard]] const Tensor& dataset(const std::string& path) const;
  [[nodiscard]] const Attribute& attr(const std::string& name) const;

  [[nodiscard]] const std::map<std::string, Group>& groups() const noexcept {
    return groups_;
  }
  [[nodiscard]] const std::map<std::string, Tensor>& datasets() const noexcept {
    return datasets_;
  }
  [[nodiscard]] const std::map<std::string, Attribute>& attrs() const noexcept {
    return attrs_;
  }

  /// Recursive dataset count / payload bytes (like `h5ls -r | wc -l`).
  [[nodiscard]] std::size_t total_datasets() const noexcept;
  [[nodiscard]] std::size_t total_payload_bytes() const noexcept;

  friend bool operator==(const Group&, const Group&) = default;

 private:
  std::map<std::string, Group> groups_;
  std::map<std::string, Tensor> datasets_;
  std::map<std::string, Attribute> attrs_;
};

/// Binary encoding with magic/version header and CRC-32 trailer; throws
/// std::runtime_error on any structural or integrity violation.
[[nodiscard]] std::vector<std::byte> serialize(const Group& root);
[[nodiscard]] Group deserialize(const std::vector<std::byte>& bytes);

void save(const std::filesystem::path& path, const Group& root);
[[nodiscard]] Group load(const std::filesystem::path& path);

/// Checkpoint <-> SWH5: one group per layer (parameter-name prefix), one
/// dataset per tensor, `arch` / `score` as root attributes — the Keras-like
/// layout the paper's evaluators write.  `with_content_hashes` adds a
/// "<leaf>:content_hash" attribute per tensor carrying the weight bank's
/// 128-bit content address in hex (chunk_id in weight_bank.hpp).
[[nodiscard]] Group from_checkpoint(const Checkpoint& ckpt,
                                    bool with_content_hashes = false);
[[nodiscard]] Checkpoint to_checkpoint(const Group& root);

}  // namespace swt::swh5
