#include "ckpt/checkpoint.hpp"

#include <array>
#include <cstring>
#include <stdexcept>

#include "ckpt/wire.hpp"

namespace swt {

namespace {

constexpr std::uint32_t kMagic = 0x53575443;  // "SWTC"
constexpr std::uint32_t kVersion = 2;

std::array<std::uint32_t, 256> make_crc_table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    table[i] = c;
  }
  return table;
}

}  // namespace

std::uint32_t crc32(const void* data, std::size_t len) noexcept {
  static const auto table = make_crc_table();
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = 0xFFFFFFFFu;
  for (std::size_t i = 0; i < len; ++i) c = table[(c ^ p[i]) & 0xFF] ^ (c >> 8);
  return c ^ 0xFFFFFFFFu;
}

Checkpoint Checkpoint::from_network(Network& net, std::vector<int> arch, double score) {
  Checkpoint ckpt;
  ckpt.arch = std::move(arch);
  ckpt.score = score;
  for (const auto& p : net.params()) ckpt.tensors.push_back({p.name, *p.value});
  return ckpt;
}

std::size_t Checkpoint::payload_bytes() const noexcept {
  std::size_t n = 0;
  for (const auto& t : tensors) n += static_cast<std::size_t>(t.value.numel()) * sizeof(float);
  return n;
}

std::vector<std::byte> serialize(const Checkpoint& ckpt, CompressionKind compression) {
  wire::Writer w;
  w.u32(kMagic);
  w.u32(kVersion);
  w.u32(static_cast<std::uint32_t>(compression));
  w.f64(ckpt.score);
  w.u64(ckpt.arch.size());
  for (int c : ckpt.arch) w.u32(static_cast<std::uint32_t>(c));
  w.u64(ckpt.tensors.size());
  for (const auto& t : ckpt.tensors) {
    w.str(t.name);
    w.u64(t.value.shape().rank());
    for (std::int64_t d : t.value.shape().dims()) w.u64(static_cast<std::uint64_t>(d));
    const auto payload = encode_values(t.value.values(), compression);
    w.raw(payload.data(), payload.size());
  }
  const std::uint32_t crc = crc32(w.bytes().data(), w.bytes().size());
  w.u32(crc);
  return std::move(w.bytes());
}

Checkpoint deserialize(const std::vector<std::byte>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t) * 3)
    throw std::runtime_error("checkpoint: stream too short");
  // Verify the CRC over everything before the 4-byte trailer.
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored;
  std::memcpy(&stored, bytes.data() + body, sizeof stored);
  if (crc32(bytes.data(), body) != stored)
    throw std::runtime_error("checkpoint: CRC mismatch (corrupted checkpoint)");

  wire::Reader r(bytes.data(), body);
  if (r.u32() != kMagic) throw std::runtime_error("checkpoint: bad magic");
  const std::uint32_t version = r.u32();
  if (version != kVersion)
    throw std::runtime_error("checkpoint: unsupported version " + std::to_string(version));
  const std::uint32_t compression_raw = r.u32();
  if (compression_raw > static_cast<std::uint32_t>(CompressionKind::kQuant8))
    throw std::runtime_error("checkpoint: unknown compression kind");
  const auto compression = static_cast<CompressionKind>(compression_raw);
  Checkpoint ckpt;
  ckpt.score = r.f64();
  const std::uint64_t arch_len = r.u64();
  ckpt.arch.reserve(arch_len);
  for (std::uint64_t i = 0; i < arch_len; ++i) ckpt.arch.push_back(static_cast<int>(r.u32()));
  const std::uint64_t n_tensors = r.u64();
  ckpt.tensors.reserve(n_tensors);
  for (std::uint64_t i = 0; i < n_tensors; ++i) {
    NamedTensor nt;
    nt.name = r.str();
    const std::uint64_t rank = r.u64();
    std::vector<std::int64_t> dims(rank);
    for (auto& d : dims) d = static_cast<std::int64_t>(r.u64());
    Shape shape(std::move(dims));
    const auto count = static_cast<std::size_t>(shape.numel());
    std::vector<std::byte> payload(encoded_size(compression, count));
    r.raw(payload.data(), payload.size());
    nt.value = Tensor(std::move(shape), decode_values(payload, count, compression));
    ckpt.tensors.push_back(std::move(nt));
  }
  if (r.remaining() != 0) throw std::runtime_error("checkpoint: trailing garbage");
  return ckpt;
}

}  // namespace swt
