#include "ckpt/weight_bank.hpp"

#include <array>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <stdexcept>
#include <utility>

#include "ckpt/wire.hpp"
#include "common/fsio.hpp"
#include "common/log.hpp"
#include "obs/metrics.hpp"

namespace swt {

namespace {

// Frame magics: "SWTK" (chunK) and "SWTM" (Manifest), little-endian u32.
constexpr std::uint32_t kChunkMagic = 0x4B545753;
constexpr std::uint32_t kManifestMagic = 0x4D545753;
constexpr std::uint8_t kBankVersion = 1;

/// One splitmix64-style avalanche step (Steele et al.); both hash lanes use
/// it with distinct odd multipliers so a collision in one lane is
/// independent of the other.
[[nodiscard]] std::uint64_t avalanche(std::uint64_t x, std::uint64_t m1,
                                      std::uint64_t m2) noexcept {
  x ^= x >> 30;
  x *= m1;
  x ^= x >> 27;
  x *= m2;
  x ^= x >> 31;
  return x;
}

struct HashLane {
  std::uint64_t state;
  std::uint64_t m1;
  std::uint64_t m2;
  void feed(std::uint64_t word) noexcept {
    state = avalanche(state ^ word, m1, m2) + 0x9E3779B97F4A7C15ULL;
  }
};

/// CRC-framed chunk payload: the encoded tensor values plus enough metadata
/// (codec kind, value count) to decode them without the manifest.
[[nodiscard]] std::vector<std::byte> encode_chunk_frame(std::span<const float> values,
                                                        CompressionKind kind) {
  wire::Writer w;
  w.u32(kChunkMagic);
  w.u8(kBankVersion);
  w.u8(static_cast<std::uint8_t>(kind));
  w.u64(values.size());
  w.blob(encode_values(values, kind));
  const std::uint32_t crc = crc32(w.bytes().data(), w.size());
  w.u32(crc);
  return std::move(w.bytes());
}

/// Decode a chunk frame into float values; throws std::runtime_error on any
/// structural or CRC mismatch, and when the value count disagrees with
/// `expected_count` (a chunk swapped under a manifest's nose).
[[nodiscard]] std::vector<float> decode_chunk_frame(const std::vector<std::byte>& frame,
                                                    std::size_t expected_count) {
  if (frame.size() < sizeof(std::uint32_t))
    throw std::runtime_error("weight bank: chunk frame truncated");
  const std::size_t body = frame.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, frame.data() + body, sizeof stored_crc);
  if (crc32(frame.data(), body) != stored_crc)
    throw std::runtime_error("weight bank: chunk CRC mismatch");
  wire::Reader r(frame.data(), body);
  if (r.u32() != kChunkMagic) throw std::runtime_error("weight bank: bad chunk magic");
  if (r.u8() != kBankVersion) throw std::runtime_error("weight bank: chunk version mismatch");
  const auto kind = static_cast<CompressionKind>(r.u8());
  const std::uint64_t count = r.u64();
  if (count != expected_count)
    throw std::runtime_error("weight bank: chunk value count mismatch");
  const std::vector<std::byte> payload = r.blob();
  return decode_values(payload, count, kind);
}

}  // namespace

std::string ChunkId::hex() const {
  std::array<char, 33> buf{};
  std::snprintf(buf.data(), buf.size(), "%016llx%016llx",
                static_cast<unsigned long long>(hi), static_cast<unsigned long long>(lo));
  return std::string(buf.data(), 32);
}

ChunkId chunk_id(const Tensor& value) {
  // Two independent lanes over the same word stream: rank, each dim, the
  // float payload 8 bytes at a time, and finally the byte length (so a
  // zero-padded tail cannot alias a longer tensor).
  HashLane a{0x6A09E667F3BCC909ULL, 0xBF58476D1CE4E5B9ULL, 0x94D049BB133111EBULL};
  HashLane b{0xBB67AE8584CAA73BULL, 0xFF51AFD7ED558CCDULL, 0xC4CEB9FE1A85EC53ULL};
  const std::vector<std::int64_t>& dims = value.shape().dims();
  a.feed(dims.size());
  b.feed(dims.size());
  for (std::int64_t d : dims) {
    a.feed(static_cast<std::uint64_t>(d));
    b.feed(static_cast<std::uint64_t>(d));
  }
  std::span<const float> vals = value.values();
  const auto* bytes = reinterpret_cast<const unsigned char*>(vals.data());
  const std::size_t nbytes = vals.size() * sizeof(float);
  std::size_t i = 0;
  for (; i + 8 <= nbytes; i += 8) {
    std::uint64_t word;
    std::memcpy(&word, bytes + i, sizeof word);
    a.feed(word);
    b.feed(word);
  }
  if (i < nbytes) {
    std::uint64_t word = 0;
    std::memcpy(&word, bytes + i, nbytes - i);
    a.feed(word);
    b.feed(word);
  }
  a.feed(nbytes);
  b.feed(nbytes);
  return ChunkId{a.state, b.state};
}

WeightBank::WeightBank(Backend backend, std::filesystem::path dir,
                       CompressionKind compression, std::size_t byte_budget)
    : backend_(backend),
      dir_(std::move(dir)),
      compression_(compression),
      byte_budget_(byte_budget) {
  if (backend_ != Backend::kDisk) return;
  if (dir_.empty()) throw std::invalid_argument("WeightBank: disk backend needs a dir");
  const std::filesystem::path chunks_dir = dir_ / "chunks";
  const std::filesystem::path manifests_dir = dir_ / "manifests";
  std::filesystem::create_directories(chunks_dir);
  std::filesystem::create_directories(manifests_dir);

  // Reopen (crash recovery).  Order matters: manifests are the roots, so
  // they are adopted first and chunk refcounts rebuilt from them; only then
  // can a chunk file be classified as live or orphan.  A writer killed
  // between its chunk writes and its manifest write leaves exactly the
  // orphan case — the chunks are garbage-collected and the put never
  // happened, which is the same contract the flat store's tmp+rename gives.
  for (const auto& entry : std::filesystem::directory_iterator(manifests_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() == ".tmp") {
      std::error_code ec;
      std::filesystem::remove(p, ec);
      continue;
    }
    if (p.extension() != ".swtm") continue;
    Manifest m;
    try {
      m = decode_manifest(fsio::read_file(p));
    } catch (const std::exception& e) {
      log_warn("weight bank: dropping corrupt manifest ", p.string(), ": ", e.what());
      std::error_code ec;
      std::filesystem::remove(p, ec);
      continue;
    }
    m.serialized_bytes = static_cast<std::size_t>(entry.file_size());
    manifest_bytes_total_ += m.serialized_bytes;
    for (const TensorRef& ref : m.tensors) {
      Chunk& c = chunks_[ref.id];
      ++c.refs;
      c.resident = false;  // confirmed below if the file exists
    }
    manifests_[p.stem().string()] = std::move(m);
  }
  for (const auto& entry : std::filesystem::directory_iterator(chunks_dir)) {
    if (!entry.is_regular_file()) continue;
    const std::filesystem::path& p = entry.path();
    if (p.extension() == ".tmp") {
      std::error_code ec;
      std::filesystem::remove(p, ec);
      continue;
    }
    if (p.extension() != ".chk") continue;
    const std::string stem = p.stem().string();
    ChunkId id{};
    if (stem.size() == 32) {
      id.hi = std::strtoull(stem.substr(0, 16).c_str(), nullptr, 16);
      id.lo = std::strtoull(stem.substr(16).c_str(), nullptr, 16);
    }
    auto it = chunks_.find(id);
    if (it == chunks_.end()) {
      // Orphan: no surviving manifest references this content.
      std::error_code ec;
      std::filesystem::remove(p, ec);
      continue;
    }
    it->second.resident = true;
    it->second.encoded_bytes = static_cast<std::size_t>(entry.file_size());
    it->second.last_used = ++tick_;
    resident_bytes_ += it->second.encoded_bytes;
  }
  // Seed the traffic meters so dedup_ratio() stays meaningful across a
  // reopen: every adopted resident chunk was written once, and every
  // manifest reference re-counts its chunk logically.
  for (const auto& [id, c] : chunks_)
    if (c.resident) {
      unique_written_ += c.encoded_bytes;
      logical_written_ += c.encoded_bytes * c.refs;
    }
  evict_to_budget_locked();
}

std::filesystem::path WeightBank::chunk_path(const ChunkId& id) const {
  return dir_ / "chunks" / (id.hex() + ".chk");
}

std::filesystem::path WeightBank::manifest_path(const std::string& key) const {
  return dir_ / "manifests" / (key + ".swtm");
}

std::vector<std::byte> WeightBank::encode_manifest(const Manifest& m) const {
  wire::Writer w;
  w.u32(kManifestMagic);
  w.u8(kBankVersion);
  w.u8(static_cast<std::uint8_t>(compression_));
  w.u64(m.arch.size());
  for (int v : m.arch) w.i64(v);
  w.f64(m.score);
  w.u64(m.tensors.size());
  for (const TensorRef& ref : m.tensors) {
    w.str(ref.name);
    w.u64(ref.dims.size());
    for (std::int64_t d : ref.dims) w.i64(d);
    w.u64(ref.id.hi);
    w.u64(ref.id.lo);
  }
  const std::uint32_t crc = crc32(w.bytes().data(), w.size());
  w.u32(crc);
  return std::move(w.bytes());
}

WeightBank::Manifest WeightBank::decode_manifest(const std::vector<std::byte>& bytes) {
  if (bytes.size() < sizeof(std::uint32_t))
    throw std::runtime_error("weight bank: manifest truncated");
  const std::size_t body = bytes.size() - sizeof(std::uint32_t);
  std::uint32_t stored_crc = 0;
  std::memcpy(&stored_crc, bytes.data() + body, sizeof stored_crc);
  if (crc32(bytes.data(), body) != stored_crc)
    throw std::runtime_error("weight bank: manifest CRC mismatch");
  wire::Reader r(bytes.data(), body);
  if (r.u32() != kManifestMagic) throw std::runtime_error("weight bank: bad manifest magic");
  if (r.u8() != kBankVersion)
    throw std::runtime_error("weight bank: manifest version mismatch");
  r.u8();  // compression kind at write time; each chunk frame carries its own
  Manifest m;
  const std::uint64_t arch_n = r.u64();
  m.arch.reserve(arch_n);
  for (std::uint64_t i = 0; i < arch_n; ++i) m.arch.push_back(static_cast<int>(r.i64()));
  m.score = r.f64();
  const std::uint64_t tensor_n = r.u64();
  m.tensors.reserve(tensor_n);
  for (std::uint64_t i = 0; i < tensor_n; ++i) {
    TensorRef ref;
    ref.name = r.str();
    const std::uint64_t rank = r.u64();
    ref.dims.reserve(rank);
    for (std::uint64_t d = 0; d < rank; ++d) ref.dims.push_back(r.i64());
    ref.id.hi = r.u64();
    ref.id.lo = r.u64();
    m.tensors.push_back(std::move(ref));
  }
  m.serialized_bytes = bytes.size();
  return m;
}

BankPutStats WeightBank::put(const std::string& key, const Checkpoint& ckpt) {
  std::scoped_lock lock(mutex_);
  BankPutStats stats;
  Manifest m;
  m.arch = ckpt.arch;
  m.score = ckpt.score;
  m.tensors.reserve(ckpt.tensors.size());

  // Phase 1: resolve every tensor to a chunk, materialising first-seen (or
  // previously evicted) content.  Chunk files land on disk *before* the
  // manifest that roots them — the crash-consistency ordering.
  for (const NamedTensor& t : ckpt.tensors) {
    TensorRef ref{t.name, t.value.shape().dims(), chunk_id(t.value)};
    auto [it, inserted] = chunks_.try_emplace(ref.id);
    Chunk& c = it->second;
    if (inserted || !c.resident) {
      std::vector<std::byte> frame = encode_chunk_frame(t.value.values(), compression_);
      c.encoded_bytes = frame.size();
      c.resident = true;
      resident_bytes_ += c.encoded_bytes;
      stats.new_chunk_bytes += c.encoded_bytes;
      unique_written_ += c.encoded_bytes;
      if (backend_ == Backend::kDisk)
        fsio::atomic_write_file(chunk_path(ref.id), frame.data(), frame.size());
      else
        c.encoded = std::move(frame);
    } else {
      ++stats.deduped_chunks;
    }
    c.last_used = ++tick_;
    stats.logical_chunk_bytes += c.encoded_bytes;
    logical_written_ += c.encoded_bytes;
    ++c.refs;  // the new manifest's reference; the old one is released below
    m.tensors.push_back(std::move(ref));
  }

  // Phase 2: root the chunks with the manifest (atomic replace on disk).
  std::vector<std::byte> manifest_bytes = encode_manifest(m);
  m.serialized_bytes = manifest_bytes.size();
  stats.manifest_bytes = m.serialized_bytes;
  if (backend_ == Backend::kDisk)
    fsio::atomic_write_file(manifest_path(key), manifest_bytes.data(),
                            manifest_bytes.size());

  // Phase 3: swap in the new manifest.  New references were added first, so
  // an overwrite sharing chunks with its predecessor can never drop them to
  // zero refs in between.
  auto it = manifests_.find(key);
  if (it != manifests_.end()) {
    manifest_bytes_total_ -= it->second.serialized_bytes;
    release_manifest_locked(it->second);
    it->second = std::move(m);
  } else {
    manifests_.emplace(key, std::move(m));
  }
  manifest_bytes_total_ += stats.manifest_bytes;

  if (metrics_enabled()) {
    MetricsRegistry& reg = metrics();
    reg.counter("bank.put_total").add();
    reg.counter("bank.dedup_chunks_total").add(
        static_cast<std::int64_t>(stats.deduped_chunks));
    reg.counter("bank.unique_bytes_total").add(
        static_cast<std::int64_t>(stats.new_chunk_bytes));
    reg.counter("bank.logical_bytes_total").add(
        static_cast<std::int64_t>(stats.logical_chunk_bytes));
  }
  evict_to_budget_locked();
  return stats;
}

std::optional<std::vector<float>> WeightBank::load_chunk_locked(const TensorRef& ref) {
  auto it = chunks_.find(ref.id);
  if (it == chunks_.end() || !it->second.resident) return std::nullopt;
  Chunk& c = it->second;
  std::size_t count = 1;
  for (std::int64_t d : ref.dims) count *= static_cast<std::size_t>(d);
  try {
    if (backend_ == Backend::kMemory) return decode_chunk_frame(c.encoded, count);
    return decode_chunk_frame(fsio::read_file(chunk_path(ref.id)), count);
  } catch (const std::exception& e) {
    // Corrupt (or unreadable) chunk: de-materialise it so a future re-put of
    // the same content refetches a clean copy, and report a miss — the
    // evaluator's random-init fallback handles the rest.
    log_warn("weight bank: corrupt chunk ", ref.id.hex(), " (", ref.name,
             "): ", e.what());
    ++corrupt_chunks_;
    if (metrics_enabled()) metrics().counter("bank.corrupt_chunks_total").add();
    resident_bytes_ -= c.encoded_bytes;
    c.resident = false;
    c.encoded.clear();
    c.encoded.shrink_to_fit();
    if (backend_ == Backend::kDisk) {
      std::error_code ec;
      std::filesystem::remove(chunk_path(ref.id), ec);
    }
    return std::nullopt;
  }
}

std::optional<Checkpoint> WeightBank::try_get(const std::string& key,
                                              std::size_t* manifest_bytes) {
  std::scoped_lock lock(mutex_);
  auto it = manifests_.find(key);
  if (it == manifests_.end()) return std::nullopt;
  const Manifest& m = it->second;
  if (manifest_bytes != nullptr) *manifest_bytes = m.serialized_bytes;
  Checkpoint ckpt;
  ckpt.arch = m.arch;
  ckpt.score = m.score;
  ckpt.tensors.reserve(m.tensors.size());
  for (const TensorRef& ref : m.tensors) {
    std::optional<std::vector<float>> values = load_chunk_locked(ref);
    if (!values.has_value()) {
      if (metrics_enabled()) metrics().counter("bank.get_miss_total").add();
      return std::nullopt;  // evicted / missing / corrupt chunk
    }
    chunks_[ref.id].last_used = ++tick_;
    ckpt.tensors.push_back(NamedTensor{ref.name, Tensor(Shape(ref.dims), *std::move(values))});
  }
  if (metrics_enabled()) metrics().counter("bank.get_total").add();
  return ckpt;
}

void WeightBank::release_manifest_locked(const Manifest& m) {
  for (const TensorRef& ref : m.tensors) {
    auto it = chunks_.find(ref.id);
    if (it == chunks_.end()) continue;
    if (--it->second.refs == 0) {
      if (it->second.resident) resident_bytes_ -= it->second.encoded_bytes;
      if (backend_ == Backend::kDisk) {
        std::error_code ec;
        std::filesystem::remove(chunk_path(ref.id), ec);
        std::filesystem::remove(fsio::tmp_sibling(chunk_path(ref.id)), ec);
      }
      chunks_.erase(it);
    }
  }
}

bool WeightBank::remove(const std::string& key) {
  std::scoped_lock lock(mutex_);
  auto it = manifests_.find(key);
  if (it == manifests_.end()) return false;
  manifest_bytes_total_ -= it->second.serialized_bytes;
  release_manifest_locked(it->second);
  manifests_.erase(it);
  if (backend_ == Backend::kDisk) {
    std::error_code ec;
    std::filesystem::remove(manifest_path(key), ec);
    std::filesystem::remove(fsio::tmp_sibling(manifest_path(key)), ec);
  }
  return true;
}

void WeightBank::evict_to_budget_locked() {
  if (byte_budget_ == 0) return;
  while (resident_bytes_ > byte_budget_) {
    // LRU victim with (last_used, id) tie-break: deterministic for a
    // deterministic operation sequence.
    auto victim = chunks_.end();
    for (auto it = chunks_.begin(); it != chunks_.end(); ++it) {
      if (!it->second.resident) continue;
      if (victim == chunks_.end() || it->second.last_used < victim->second.last_used)
        victim = it;
    }
    if (victim == chunks_.end()) break;
    Chunk& c = victim->second;
    resident_bytes_ -= c.encoded_bytes;
    ++evicted_chunks_;
    evicted_bytes_ += c.encoded_bytes;
    if (metrics_enabled()) metrics().counter("bank.evicted_chunks_total").add();
    c.resident = false;  // the entry stays: refcounts must survive eviction
    c.encoded.clear();
    c.encoded.shrink_to_fit();
    if (backend_ == Backend::kDisk) {
      std::error_code ec;
      std::filesystem::remove(chunk_path(victim->first), ec);
    }
  }
}

bool WeightBank::contains(const std::string& key) const {
  std::scoped_lock lock(mutex_);
  return manifests_.contains(key);
}

std::size_t WeightBank::count() const {
  std::scoped_lock lock(mutex_);
  return manifests_.size();
}

std::vector<std::string> WeightBank::keys() const {
  std::scoped_lock lock(mutex_);
  std::vector<std::string> out;
  out.reserve(manifests_.size());
  for (const auto& [key, m] : manifests_) out.push_back(key);
  return out;  // std::map iteration order: already sorted
}

BankStats WeightBank::stats() const {
  std::scoped_lock lock(mutex_);
  BankStats s;
  s.chunk_count = chunks_.size();
  s.resident_chunk_bytes = resident_bytes_;
  s.manifest_count = manifests_.size();
  s.manifest_bytes = manifest_bytes_total_;
  s.unique_bytes_written = unique_written_;
  s.logical_bytes_written = logical_written_;
  s.evicted_chunks = evicted_chunks_;
  s.evicted_bytes = evicted_bytes_;
  s.corrupt_chunks = corrupt_chunks_;
  return s;
}

}  // namespace swt
