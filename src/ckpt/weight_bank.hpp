// Content-addressed weight bank.
//
// The paper writes every scored candidate to the PFS as an independent blob
// and reads the whole parent blob back before scoring a child, so the PFS
// traffic of Fig. 10/11 grows with population x checkpoint size even when
// most tensor content is shared (retried attempts, frozen layers, warm
// starts from a previous run).  The bank replaces the flat blob with two
// content-addressed planes:
//
//   chunks/    one refcounted, optionally compressed (compress.hpp) chunk
//              per *distinct tensor content*, keyed by a 128-bit hash of the
//              tensor's dims + raw float bytes ("<32 hex>.chk");
//   manifests/ one small manifest per checkpoint key listing (name, dims,
//              chunk hash) per tensor plus arch/score ("<key>.swtm").
//
// A put() only writes chunks the bank has never seen, so structurally
// identical tensors across the population dedupe to one stored copy, and
// the modelled PFS cost of a provider lookup is the manifest read — the
// chunks a child needs were just written by its parent's evaluation and are
// treated as cluster-cache hits (DESIGN.md "Weight bank").
//
// Durability mirrors the journal: every file is CRC-32-framed over the wire
// codec and written via fsio::atomic_write_file (tmp + fsync + rename), and
// a put() writes its chunks *before* its manifest — a process killed
// mid-put leaves at worst orphan chunks, which reopen garbage-collects.
// Eviction under a byte budget is LRU over resident chunk payloads; an
// evicted or CRC-corrupt chunk turns the keys that reference it into read
// misses (the caller falls back to random init, or re-puts the content,
// which re-materialises the chunk).
#pragma once

#include <compare>
#include <cstddef>
#include <cstdint>
#include <filesystem>
#include <map>
#include <mutex>
#include <optional>
#include <string>
#include <vector>

#include "ckpt/checkpoint.hpp"

namespace swt {

/// 128-bit content address of one tensor (two independent 64-bit mix lanes
/// over the dims and raw float bytes; collisions are vanishingly unlikely
/// and non-adversarial here).
struct ChunkId {
  std::uint64_t hi = 0;
  std::uint64_t lo = 0;

  friend auto operator<=>(const ChunkId&, const ChunkId&) = default;

  /// 32 lowercase hex characters (the chunk's file stem).
  [[nodiscard]] std::string hex() const;
};

/// Content address of `value` — a pure function of dims and float bytes, so
/// it is identical across processes, thread counts and platforms of the
/// same endianness.
[[nodiscard]] ChunkId chunk_id(const Tensor& value);

/// What one put() moved and what it deduplicated.
struct BankPutStats {
  std::size_t manifest_bytes = 0;       ///< serialized manifest size
  std::size_t new_chunk_bytes = 0;      ///< encoded bytes of first-seen chunks
  std::size_t logical_chunk_bytes = 0;  ///< encoded bytes of all referenced chunks
  std::size_t deduped_chunks = 0;       ///< tensors resolved to an existing chunk

  /// Bytes actually sent to the PFS (what the cost model charges).
  [[nodiscard]] std::size_t bytes_moved() const noexcept {
    return manifest_bytes + new_chunk_bytes;
  }
};

struct BankStats {
  std::size_t chunk_count = 0;           ///< chunk entries with live references
  std::size_t resident_chunk_bytes = 0;  ///< encoded bytes currently materialised
  std::size_t manifest_count = 0;
  std::size_t manifest_bytes = 0;
  std::size_t unique_bytes_written = 0;   ///< cumulative first-seen chunk bytes
  std::size_t logical_bytes_written = 0;  ///< cumulative referenced chunk bytes
  std::size_t evicted_chunks = 0;
  std::size_t evicted_bytes = 0;
  std::size_t corrupt_chunks = 0;  ///< CRC failures seen at read time

  /// logical / unique bytes ever written: 1.0 = no sharing, 2.0 = every
  /// chunk stored once but referenced twice, ... (the headline number of
  /// bench_weightbank's dedup study).
  [[nodiscard]] double dedup_ratio() const noexcept {
    if (unique_bytes_written == 0) return 1.0;
    return static_cast<double>(logical_bytes_written) /
           static_cast<double>(unique_bytes_written);
  }
};

class WeightBank {
 public:
  enum class Backend { kMemory, kDisk };

  /// Disk backend persists under `dir`/chunks and `dir`/manifests (created
  /// if missing) and, on reopen, adopts every intact manifest, rebuilds
  /// chunk refcounts from them, sweeps ".tmp" staging debris and
  /// garbage-collects orphan chunks (the artifact of a writer killed
  /// between its chunk and manifest writes).  `byte_budget` bounds resident
  /// encoded chunk bytes (0 = unlimited); `compression` encodes every chunk
  /// payload.
  explicit WeightBank(Backend backend, std::filesystem::path dir = {},
                      CompressionKind compression = CompressionKind::kNone,
                      std::size_t byte_budget = 0);

  /// Store `ckpt` under `key` (overwrites; the old manifest's references
  /// are released).  Chunks are written before the manifest and both are
  /// CRC-framed + atomically renamed, so a kill at any instant leaves
  /// either the old complete checkpoint or the new one, never a torn mix.
  BankPutStats put(const std::string& key, const Checkpoint& ckpt);

  /// Reassemble the checkpoint under `key`; empty when the key is unknown
  /// or any referenced chunk is evicted, missing or CRC-corrupt (corrupt
  /// chunks are dropped so a later re-put heals them).  `manifest_bytes`
  /// (optional) receives the manifest's serialized size — the bytes a
  /// provider lookup actually moves over the PFS.
  [[nodiscard]] std::optional<Checkpoint> try_get(const std::string& key,
                                                  std::size_t* manifest_bytes = nullptr);

  /// Drop `key`: its manifest is deleted and every referenced chunk's
  /// refcount is decremented; zero-ref chunks are erased (and unlinked).
  bool remove(const std::string& key);

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t count() const;
  /// All manifest keys, sorted (the run's surviving chunk roots, recorded
  /// by exp/registry for cross-run warm starts).
  [[nodiscard]] std::vector<std::string> keys() const;

  [[nodiscard]] BankStats stats() const;
  [[nodiscard]] CompressionKind compression() const noexcept { return compression_; }
  [[nodiscard]] std::size_t byte_budget() const noexcept { return byte_budget_; }

 private:
  struct TensorRef {
    std::string name;
    std::vector<std::int64_t> dims;
    ChunkId id;
  };
  struct Manifest {
    std::vector<int> arch;
    double score = 0.0;
    std::vector<TensorRef> tensors;
    std::size_t serialized_bytes = 0;
  };
  struct Chunk {
    std::vector<std::byte> encoded;  ///< resident payload (memory backend)
    std::size_t encoded_bytes = 0;   ///< size whether or not resident
    std::uint64_t refs = 0;          ///< manifests referencing this content
    std::uint64_t last_used = 0;     ///< LRU tick
    bool resident = true;            ///< false once evicted / found corrupt
  };

  [[nodiscard]] std::filesystem::path chunk_path(const ChunkId& id) const;
  [[nodiscard]] std::filesystem::path manifest_path(const std::string& key) const;
  [[nodiscard]] std::vector<std::byte> encode_manifest(const Manifest& m) const;
  /// CRC-checked decode; throws std::runtime_error on any mismatch.
  [[nodiscard]] static Manifest decode_manifest(const std::vector<std::byte>& bytes);
  void release_manifest_locked(const Manifest& m);
  void evict_to_budget_locked();
  /// Fetch + CRC-verify + decode one chunk; empty on eviction or corruption
  /// (the corrupt entry is de-materialised so it can be re-put).
  [[nodiscard]] std::optional<std::vector<float>> load_chunk_locked(const TensorRef& ref);

  Backend backend_;
  std::filesystem::path dir_;
  CompressionKind compression_;
  std::size_t byte_budget_;

  mutable std::mutex mutex_;
  std::map<std::string, Manifest> manifests_;
  std::map<ChunkId, Chunk> chunks_;
  std::uint64_t tick_ = 0;
  std::size_t resident_bytes_ = 0;
  std::size_t manifest_bytes_total_ = 0;
  std::size_t unique_written_ = 0;
  std::size_t logical_written_ = 0;
  std::size_t evicted_chunks_ = 0;
  std::size_t evicted_bytes_ = 0;
  std::size_t corrupt_chunks_ = 0;
};

}  // namespace swt
