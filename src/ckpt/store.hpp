// Checkpoint store with a parametric parallel-file-system cost model.
//
// The paper checkpoints every scored candidate to a PFS in HDF5 and reads the
// parent's checkpoint back before scoring a child (Section VI).  Here a store
// keeps serialized checkpoints either in memory or on disk, and *prices* each
// access with a latency + size/bandwidth model.  The price is returned to the
// caller (and accumulated), so the virtual cluster can charge checkpoint I/O
// to its event clock — which is exactly the overhead Fig. 10/11 studies —
// without the wall-clock noise of a real shared file system.
#pragma once

#include <cstddef>
#include <filesystem>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "ckpt/checkpoint.hpp"
#include "ckpt/weight_bank.hpp"

namespace swt {

/// Simple affine cost model: seconds = latency + bytes / bandwidth.
struct PfsCostModel {
  double write_latency_s = 0.020;
  double write_bandwidth_bps = 25e6;  ///< bytes per second (contended PFS)
  double read_latency_s = 0.020;
  double read_bandwidth_bps = 25e6;

  [[nodiscard]] double write_cost(std::size_t bytes) const noexcept {
    return write_latency_s + static_cast<double>(bytes) / write_bandwidth_bps;
  }
  [[nodiscard]] double read_cost(std::size_t bytes) const noexcept {
    return read_latency_s + static_cast<double>(bytes) / read_bandwidth_bps;
  }
};

struct IoStats {
  std::size_t bytes = 0;
  double cost_seconds = 0.0;  ///< modelled PFS time, not wall time
};

/// Opt-in content-addressed storage behind the store (see weight_bank.hpp).
/// Banked puts only move first-seen chunk bytes plus a small manifest, and
/// banked reads are priced at manifest size — provider lookups become cache
/// hits instead of full-blob PFS reads.
struct BankConfig {
  bool enabled = false;
  std::size_t byte_budget = 0;  ///< resident chunk byte cap, 0 = unlimited
};

class CheckpointStore {
 public:
  enum class Backend { kMemory, kDisk };

  /// Disk backend persists under `dir` (created if missing); memory backend
  /// ignores `dir`.  `compression` applies to every put() (see compress.hpp).
  /// `bank.enabled` swaps the flat blob layout for the content-addressed
  /// weight bank (dedup + manifest-priced reads); the flat layout and its
  /// on-disk format are byte-for-byte unchanged when the bank is off.
  explicit CheckpointStore(Backend backend = Backend::kMemory,
                           std::filesystem::path dir = {}, PfsCostModel model = {},
                           CompressionKind compression = CompressionKind::kNone,
                           BankConfig bank = {});

  /// Serialize and store under `key` (overwrites); returns modelled cost.
  /// Disk puts are crash-consistent: staged to a tmp sibling, fsynced and
  /// renamed into place, so concurrent or killed writers can never leave a
  /// torn blob under the key.
  IoStats put(const std::string& key, const Checkpoint& ckpt);

  /// Delete `key` (and any staging debris a killed writer left beside it).
  /// Returns true when something was removed; unknown keys are a no-op.
  bool remove(const std::string& key);

  /// Load and decode; throws std::out_of_range for unknown keys and
  /// std::runtime_error for corrupted payloads.
  [[nodiscard]] std::pair<Checkpoint, IoStats> get(const std::string& key) const;

  /// Non-throwing lookup with a single lock acquisition (no contains()/get()
  /// TOCTOU window): empty when the key is unknown or the payload cannot be
  /// read or decoded (truncated file, CRC failure, ...).
  [[nodiscard]] std::optional<std::pair<Checkpoint, IoStats>> try_get(
      const std::string& key) const;

  [[nodiscard]] bool contains(const std::string& key) const;
  [[nodiscard]] std::size_t count() const;

  /// Serialized bytes *moved to the PFS* by every put(), in order (Fig. 11).
  /// These are cumulative traffic meters: an overwrite of an existing key
  /// appends again, and remove() does not retract — use live_bytes() for
  /// what the store currently holds.
  [[nodiscard]] std::vector<std::size_t> stored_sizes() const;
  [[nodiscard]] std::size_t total_bytes_written() const;

  /// Bytes the store holds *right now*: payloads of live keys (flat), or
  /// resident chunk + manifest bytes (banked).  Unlike the cumulative
  /// meters above, overwrites replace and removes retract.
  [[nodiscard]] std::size_t live_bytes() const;

  [[nodiscard]] const PfsCostModel& cost_model() const noexcept { return model_; }
  [[nodiscard]] CompressionKind compression() const noexcept { return compression_; }
  /// The content-addressed bank behind this store, or nullptr when flat.
  [[nodiscard]] const WeightBank* bank() const noexcept { return bank_.get(); }

 private:
  [[nodiscard]] std::filesystem::path path_for(const std::string& key) const;
  /// Fetch the serialized payload under one lock; empty for unknown keys,
  /// throws std::runtime_error when the backing file cannot be read.
  [[nodiscard]] std::optional<std::vector<std::byte>> read_bytes(
      const std::string& key) const;

  Backend backend_;
  std::filesystem::path dir_;
  PfsCostModel model_;
  CompressionKind compression_;
  /// Non-null iff BankConfig::enabled; the bank is internally synchronised,
  /// so const store methods can route reads through it.
  std::unique_ptr<WeightBank> bank_;
  mutable std::mutex mutex_;
  std::map<std::string, std::vector<std::byte>> memory_;
  std::map<std::string, std::size_t> disk_sizes_;
  std::vector<std::size_t> sizes_;
  std::size_t total_written_ = 0;
};

}  // namespace swt
