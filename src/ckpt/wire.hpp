// Little-endian wire primitives shared by the checkpoint codec and the SWH5
// container format.  Writer appends into a byte buffer; Reader consumes one
// with hard bounds checks (truncation throws).
#pragma once

#include <cstdint>
#include <cstring>
#include <stdexcept>
#include <string>
#include <vector>

namespace swt::wire {

class Writer {
 public:
  void u8(std::uint8_t v) { raw(&v, sizeof v); }
  void u32(std::uint32_t v) { raw(&v, sizeof v); }
  void u64(std::uint64_t v) { raw(&v, sizeof v); }
  void i64(std::int64_t v) { raw(&v, sizeof v); }
  void f64(double v) { raw(&v, sizeof v); }
  void str(const std::string& s) {
    u64(s.size());
    raw(s.data(), s.size());
  }
  void raw(const void* p, std::size_t n) {
    const auto* b = static_cast<const std::byte*>(p);
    buf_.insert(buf_.end(), b, b + n);
  }
  /// Length-prefixed byte blob (u64 size + raw bytes), the dual of
  /// Reader::blob.  Used by the weight bank's chunk frames.
  void blob(const std::vector<std::byte>& b) {
    u64(b.size());
    raw(b.data(), b.size());
  }
  [[nodiscard]] std::vector<std::byte>& bytes() noexcept { return buf_; }
  [[nodiscard]] std::size_t size() const noexcept { return buf_.size(); }

 private:
  std::vector<std::byte> buf_;
};

class Reader {
 public:
  Reader(const std::byte* data, std::size_t size) : data_(data), size_(size) {}
  explicit Reader(const std::vector<std::byte>& buf) : Reader(buf.data(), buf.size()) {}

  std::uint8_t u8() { return get<std::uint8_t>(); }
  std::uint32_t u32() { return get<std::uint32_t>(); }
  std::uint64_t u64() { return get<std::uint64_t>(); }
  std::int64_t i64() { return get<std::int64_t>(); }
  double f64() { return get<double>(); }
  std::string str() {
    const std::uint64_t n = u64();
    need(n);
    std::string s(reinterpret_cast<const char*>(data_ + pos_), n);
    pos_ += n;
    return s;
  }
  void raw(void* p, std::size_t n) {
    need(n);
    std::memcpy(p, data_ + pos_, n);
    pos_ += n;
  }
  std::vector<std::byte> blob() {
    const std::uint64_t n = u64();
    need(n);
    std::vector<std::byte> b(data_ + pos_, data_ + pos_ + n);
    pos_ += n;
    return b;
  }
  [[nodiscard]] std::size_t pos() const noexcept { return pos_; }
  [[nodiscard]] std::size_t remaining() const noexcept { return size_ - pos_; }

 private:
  template <typename T>
  T get() {
    T v;
    raw(&v, sizeof v);
    return v;
  }
  void need(std::uint64_t n) const {
    if (pos_ + n > size_) throw std::runtime_error("wire: truncated stream");
  }
  const std::byte* data_;
  std::size_t size_;
  std::size_t pos_ = 0;
};

}  // namespace swt::wire
