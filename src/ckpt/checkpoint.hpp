// Model checkpoints.
//
// A checkpoint captures everything the weight-transfer path needs from a
// provider model: its architecture sequence, its evaluation score and its
// named parameter tensors in topological order.  The binary codec is our
// stand-in for the paper's HDF5 files: little-endian, versioned, with a
// CRC-32 trailer so corrupted reads fail loudly instead of poisoning a
// receiver model's initialisation.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "ckpt/compress.hpp"
#include "nn/network.hpp"
#include "tensor/tensor.hpp"

namespace swt {

struct NamedTensor {
  std::string name;
  Tensor value;
};

struct Checkpoint {
  std::vector<int> arch;          ///< architecture sequence of the provider
  double score = 0.0;             ///< estimation score at checkpoint time
  std::vector<NamedTensor> tensors;

  /// Snapshot every persisted parameter of `net` (topological order).
  [[nodiscard]] static Checkpoint from_network(Network& net, std::vector<int> arch,
                                               double score);

  /// Total parameter bytes (excluding metadata); Fig. 11's size metric.
  [[nodiscard]] std::size_t payload_bytes() const noexcept;
};

/// CRC-32 (IEEE, reflected) over a byte range.
[[nodiscard]] std::uint32_t crc32(const void* data, std::size_t len) noexcept;

/// Encode to the versioned binary format.  Lossy compression (fp16/quant8)
/// shrinks the payload at a bounded reconstruction error — acceptable for
/// weight transfer, where weights are an initialisation (see compress.hpp).
[[nodiscard]] std::vector<std::byte> serialize(
    const Checkpoint& ckpt, CompressionKind compression = CompressionKind::kNone);

/// Decode; throws std::runtime_error on truncation, bad magic, version
/// mismatch or CRC failure.
[[nodiscard]] Checkpoint deserialize(const std::vector<std::byte>& bytes);

}  // namespace swt
