// Checkpoint payload compression.
//
// The paper's conclusion plans to complement weight transfer with efficient
// DNN checkpointing; its related-work section cites quantisation-based
// compression (Check-N-Run) and error-bounded lossy compression (DeepSZ).
// This module implements the corresponding codecs for our checkpoints:
//
//   kNone    - raw float32 (4 B/value), bit-exact.
//   kFp16    - IEEE-754 binary16 (2 B/value), ~2^-11 relative error.
//   kQuant8  - per-tensor linear quantisation to uint8 (1 B/value + 8 B of
//              scale/offset per tensor), absolute error <= range/510.
//
// Lossy codecs are safe for weight transfer because transferred weights are
// only an *initialisation*: training immediately refines them, so small
// perturbations cost at most a few optimizer steps (bench_ablation_compression
// measures exactly that trade-off).
#pragma once

#include <cstdint>
#include <span>
#include <vector>

#include "tensor/tensor.hpp"

namespace swt {

enum class CompressionKind : std::uint8_t { kNone = 0, kFp16 = 1, kQuant8 = 2 };

[[nodiscard]] const char* to_string(CompressionKind k) noexcept;

/// IEEE-754 binary16 conversions (round-to-nearest-even on encode).
[[nodiscard]] std::uint16_t float_to_half(float f) noexcept;
[[nodiscard]] float half_to_float(std::uint16_t h) noexcept;

/// Encode a tensor's values under `kind`; the layout is self-contained
/// (quantisation parameters included) and decodable with decode_values.
/// Non-finite inputs are handled deterministically: kNone round-trips them
/// bit-exactly, kFp16 keeps Inf/NaN natively, and kQuant8 computes its
/// range over finite values only and saturates +Inf to the top bin and
/// NaN/-Inf to the bottom bin.
[[nodiscard]] std::vector<std::byte> encode_values(std::span<const float> values,
                                                   CompressionKind kind);

/// Decode exactly `count` values previously produced by encode_values.
/// Throws std::runtime_error on malformed input.
[[nodiscard]] std::vector<float> decode_values(std::span<const std::byte> bytes,
                                               std::size_t count, CompressionKind kind);

/// Worst-case absolute reconstruction error for values in [-max_abs, max_abs].
/// Non-finite `max_abs` yields +infinity for the lossy kinds (no finite
/// bound exists) and 0 for kNone (bit-exact regardless).
[[nodiscard]] double max_abs_error_bound(CompressionKind kind, double max_abs) noexcept;

/// Encoded payload size for `count` values.
[[nodiscard]] std::size_t encoded_size(CompressionKind kind, std::size_t count) noexcept;

}  // namespace swt
