// Command-line NAS driver: run any app x scheme combination and export the
// trace as CSV for offline analysis (the DeepHyper-results-file workflow).
//
//   $ ./nas_cli --app cifar --mode lcs --evals 100 --workers 16
//               --seed 3 --out trace.csv [--async-ckpt] [--compress quant8]
//               [--metrics-out metrics.json] [--trace-out spans.json]
//               [--log-level warn]
//
// Prints a run summary (best score, makespan, checkpoint traffic) and, with
// --out, writes the full per-candidate trace.  --metrics-out snapshots the
// process metrics registry (JSON, or CSV when the path ends in .csv);
// --trace-out records span timelines and writes Chrome/Perfetto trace_event
// JSON with one track per virtual worker.  --events-out streams NDJSON
// lifecycle events (tailable mid-run; "-" targets stderr), --progress paints
// a rate-limited heartbeat line on stderr, and --registry-dir appends the
// run summary to <dir>/registry.ndjson for compare_runs.
#include <chrono>
#include <cstring>
#include <fstream>
#include <iostream>
#include <memory>
#include <sstream>
#include <string>

#include "common/interrupt.hpp"
#include "common/log.hpp"
#include "common/parse.hpp"
#include "exp/apps.hpp"
#include "exp/journal.hpp"
#include "exp/registry.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/trace_io.hpp"
#include "obs/events.hpp"
#include "obs/health.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/sampler.hpp"
#include "obs/series.hpp"
#include "obs/span_tracer.hpp"
#include "serve/obs_server.hpp"
#include "tensor/kernels.hpp"

namespace {

using namespace swt;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " [--app cifar|mnist|nt3|uno] [--mode baseline|lp|lcs]\n"
               "       [--evals N] [--workers N] [--seed N] [--population N]\n"
               "       [--sample N] [--out trace.csv] [--async-ckpt]\n"
               "       [--compress none|fp16|quant8]\n"
               "       [--metrics-out file.json|file.csv] [--trace-out spans.json]\n"
               "       [--events-out events.ndjson|-] [--progress]\n"
               "       [--registry-dir DIR] [--fixed-train-seconds S]\n"
               "       [--compute-threads N] [--eval-parallelism N]\n"
               "       [--bank] [--bank-budget-mb N]\n"
               "       [--warm-start-from DIR] [--warm-start-k N]\n"
               "       [--log-level debug|info|warn|error|off]\n"
               "       [--mtbf S] [--straggler-rate P] [--straggler-mult M]\n"
               "       [--ckpt-fault-rate P] [--recovery S] [--max-attempts N]\n"
               "       [--run-dir DIR] [--resume] [--crash-after-evals N]\n"
               "       [--no-journal-fsync]\n"
               "       [--serve-port P] [--sample-interval-ms M] [--series-out F]\n"
               "       [--profile-out F.collapsed|F.json] [--profile-hz N]\n"
               "       [--stall-after-s S] [--inject-stall-after N] [--inject-stall-s S]\n"
               "\n"
               "live telemetry plane (all off by default; see DESIGN.md s10):\n"
               "  --serve-port P      serve GET /metrics /healthz /status /series on\n"
               "                      127.0.0.1:P while the search runs (0 = pick a\n"
               "                      free port; it is printed at startup).  Enables\n"
               "                      the sampler and health watchdog.\n"
               "  --sample-interval-ms M  time-series sampling period (default 250)\n"
               "  --series-out F      write the sampled time series as CSV at exit\n"
               "                      (also enables the sampler without --serve-port)\n"
               "  --stall-after-s S   watchdog: flag the run stalled (503 /healthz)\n"
               "                      after S wall seconds without a completed\n"
               "                      evaluation (default 30)\n"
               "  --inject-stall-after N  testing: freeze the scheduler thread (wall\n"
               "                      clock only; the virtual timeline and trace are\n"
               "                      untouched) once N evaluations have completed\n"
               "  --inject-stall-s S  duration of that injected stall (default 5)\n"
               "\n"
               "weight bank (see DESIGN.md \"Weight bank\"):\n"
               "  --bank              store checkpoints as content-addressed per-tensor\n"
               "                      chunks: identical tensor content dedupes to one\n"
               "                      copy and provider reads are priced at manifest\n"
               "                      size instead of full-blob size\n"
               "  --bank-budget-mb N  LRU-evict resident chunks above N MiB (0 =\n"
               "                      unlimited); evicted providers fall back to\n"
               "                      random init, like a corrupt checkpoint\n"
               "  --warm-start-from DIR  seed this run's store and evolution population\n"
               "                      with the top checkpoints of the previous run in\n"
               "                      DIR (its trace.csv + ckpts/), so early\n"
               "                      generations fetch trained tensors instead of\n"
               "                      random init; needs a transfer mode\n"
               "  --warm-start-k N    how many checkpoints to seed (default: the\n"
               "                      evolution population size)\n"
               "\n"
               "crash recovery (see DESIGN.md \"Durability contract\"):\n"
               "  --run-dir DIR       durable run: checkpoints in DIR/ckpts, config\n"
               "                      manifest + write-ahead journal in DIR, final\n"
               "                      trace in DIR/trace.csv.  Survives SIGKILL.\n"
               "  --resume            continue a killed run in --run-dir: journaled\n"
               "                      evaluations skip training and the final trace is\n"
               "                      byte-identical to an uninterrupted run.  Config\n"
               "                      flags default to the manifest; changing one that\n"
               "                      affects behaviour refuses to resume.\n"
               "  --crash-after-evals N  deterministic crash injection: _exit(42) the\n"
               "                      instant the (N+1)-th fresh evaluation would be\n"
               "                      journaled (testing; pairs with --resume)\n"
               "  --no-journal-fsync  skip the per-record journal fsync (faster, but a\n"
               "                      power cut may cost re-training; kill-safe either\n"
               "                      way)\n"
               "\n"
               "observability:\n"
               "  --events-out F      stream NDJSON lifecycle events to F (\"-\" = stderr);\n"
               "                      tail -f the file to watch a running search\n"
               "  --progress          single-line heartbeat on stderr (evals done/total,\n"
               "                      best score, virtual time, in-flight workers)\n"
               "  --registry-dir DIR  append a run summary record to DIR/registry.ndjson\n"
               "                      (diff runs with compare_runs)\n"
               "  --fixed-train-seconds S  charge every epoch S virtual seconds instead of\n"
               "                      measured wall time (makes runs bit-reproducible)\n"
               "  --compute-threads N  output-tile owners for the blocked GEMM/conv kernels\n"
               "                      (default: SWT_THREADS env, else hardware threads;\n"
               "                      results are bit-identical for every value)\n"
               "  --eval-parallelism N train up to N same-instant evaluations on real\n"
               "                      threads (default 1 = serial; traces are byte-\n"
               "                      identical for every value; N>1 runs each eval's\n"
               "                      kernels serially, overriding --compute-threads\n"
               "                      inside those evals)\n"
               "\n"
               "fault injection (all off by default; see DESIGN.md):\n"
               "  --mtbf S            mean virtual seconds of compute between worker\n"
               "                      crashes (crashed evals are resubmitted)\n"
               "  --straggler-rate P  probability an evaluation lands on a straggler\n"
               "  --straggler-mult M  compute slowdown on straggler nodes (default 4)\n"
               "  --ckpt-fault-rate P per-try PFS read/write failure probability\n"
               "                      (retried with exponential backoff)\n"
               "  --recovery S        crashed-worker recovery time (default 30)\n"
               "  --max-attempts N    tries per proposal before it counts lost (default 3)\n";
  std::exit(2);
}

AppId parse_app(const std::string& name, const char* argv0) {
  if (name == "cifar") return AppId::kCifar;
  if (name == "mnist") return AppId::kMnist;
  if (name == "nt3") return AppId::kNt3;
  if (name == "uno") return AppId::kUno;
  usage(argv0);
}

TransferMode parse_mode(const std::string& name, const char* argv0) {
  if (name == "baseline") return TransferMode::kNone;
  if (name == "lp") return TransferMode::kLP;
  if (name == "lcs") return TransferMode::kLCS;
  usage(argv0);
}

CompressionKind parse_compression(const std::string& name, const char* argv0) {
  if (name == "none") return CompressionKind::kNone;
  if (name == "fp16") return CompressionKind::kFp16;
  if (name == "quant8") return CompressionKind::kQuant8;
  usage(argv0);
}

/// --progress heartbeat, fed by the event bus.  Repaints a single stderr
/// line at most every 100 ms of wall time (the run_finished event always
/// paints) so a multi-thousand-eval search stays readable over ssh.
class ProgressMeter {
 public:
  explicit ProgressMeter(long total) : total_(total) {}

  // Invoked from EventBus::emit under the bus lock; keep it allocation-light.
  void on_event(const Event& ev) {
    switch (ev.type) {
      case EventType::kEvalStarted: ++started_; break;
      case EventType::kEvalFinished: ++finished_; break;
      case EventType::kWorkerCrashed: ++crashed_; break;
      case EventType::kBestScoreImproved:
        for (const auto& [key, value] : ev.fields)
          if (key == "score" && value != "null") best_ = std::stod(value);
        break;
      default: break;
    }
    if (ev.virtual_s >= 0.0) virtual_s_ = ev.virtual_s;
    const auto now = std::chrono::steady_clock::now();
    if (ev.type != EventType::kRunFinished && now - last_paint_ < kMinRepaint) return;
    last_paint_ = now;
    paint();
  }

  void finish() {
    paint();
    std::cerr << '\n';
  }

 private:
  static constexpr auto kMinRepaint = std::chrono::milliseconds(100);

  void paint() const {
    std::ostringstream line;
    line << "\r[nas] " << finished_ << '/' << total_ << " evals  best=";
    if (best_ > -1e17)
      line << TableReport::cell(best_);
    else
      line << "n/a";
    line << "  vt=" << TableReport::cell(virtual_s_, 1) << "s  in-flight="
         << started_ - finished_ - crashed_ << "   ";
    std::cerr << line.str() << std::flush;
  }

  long total_;
  long started_ = 0;
  long finished_ = 0;
  long crashed_ = 0;
  double best_ = -1e18;
  double virtual_s_ = 0.0;
  std::chrono::steady_clock::time_point last_paint_{};
};

}  // namespace

int main(int argc, char** argv) try {
  AppId app_id = AppId::kMnist;
  NasRunConfig cfg;
  cfg.mode = TransferMode::kLCS;
  cfg.n_evals = 60;
  cfg.seed = 1;
  cfg.cluster.num_workers = 8;
  cfg.evolution = {.population_size = 16, .sample_size = 8};
  std::string out_path;
  std::string metrics_out;
  std::string trace_out;
  std::string events_out;
  std::string registry_dir;
  std::string series_out;
  std::string profile_out;
  int profile_hz = 0;  // 0 = off unless --profile-out is given (then 97)
  bool progress = false;
  int serve_port = -1;  // -1 = no server; 0 = ephemeral
  long sample_interval_ms = 250;
  double stall_after_s = 30.0;
  CompressionKind compression = CompressionKind::kNone;

  // --resume takes its configuration from the run directory's manifest, so
  // the flags parsed below start from the manifest values; any explicitly
  // passed flag that changes behaviour then shows up as a config-hash
  // mismatch and run_nas refuses the resume instead of silently diverging.
  std::string run_dir;
  bool resume = false;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--run-dir" && i + 1 < argc) run_dir = argv[i + 1];
    else if (arg == "--resume") resume = true;
  }
  if (resume) {
    if (run_dir.empty()) {
      std::cerr << "error: --resume requires --run-dir\n";
      return 2;
    }
    const auto manifest = load_manifest(run_dir);
    if (manifest.has_value()) {
      const auto id = parse_app_id(manifest->app);
      if (!id.has_value()) {
        std::cerr << "error: manifest names unknown app '" << manifest->app << "'\n";
        return 2;
      }
      app_id = *id;
      cfg = manifest->cfg;
      compression = cfg.compression;
    }
    // No manifest: the killed run died before anything became durable, so
    // there is nothing to recover — the flags parsed below configure a
    // fresh start (run_nas still refuses a manifest-less journal as
    // corruption).  `--resume` is thereby idempotent over every kill point.
  }

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    // Full-consumption numeric parsing (common/parse.hpp): "--mtbf oops" or
    // "--seed 7x" is a usage error with the offending flag named, not an
    // uncaught std::invalid_argument aborting the process.
    const auto reject = [&](const std::string& what) -> void {
      std::cerr << "error: " << arg << " expects " << what << "\n";
      usage(argv[0]);
    };
    const auto num_long = [&]() -> long {
      const std::string text = next();
      const auto v = parse_long(text);
      if (!v.has_value()) reject("an integer, got '" + text + "'");
      return *v;
    };
    const auto num_int = [&]() -> int {
      const std::string text = next();
      const auto v = parse_int(text);
      if (!v.has_value()) reject("an integer, got '" + text + "'");
      return *v;
    };
    const auto num_u64 = [&]() -> std::uint64_t {
      const std::string text = next();
      const auto v = parse_u64(text);
      if (!v.has_value()) reject("a non-negative integer, got '" + text + "'");
      return *v;
    };
    const auto num_double = [&]() -> double {
      const std::string text = next();
      const auto v = parse_double(text);
      if (!v.has_value()) reject("a number, got '" + text + "'");
      return *v;
    };
    if (arg == "--app") app_id = parse_app(next(), argv[0]);
    else if (arg == "--mode") cfg.mode = parse_mode(next(), argv[0]);
    else if (arg == "--evals") cfg.n_evals = num_long();
    else if (arg == "--workers") cfg.cluster.num_workers = num_int();
    else if (arg == "--seed") cfg.seed = num_u64();
    else if (arg == "--population") cfg.evolution.population_size = num_int();
    else if (arg == "--sample") cfg.evolution.sample_size = num_int();
    else if (arg == "--out") out_path = next();
    else if (arg == "--metrics-out") metrics_out = next();
    else if (arg == "--trace-out") trace_out = next();
    else if (arg == "--events-out") events_out = next();
    else if (arg == "--registry-dir") registry_dir = next();
    else if (arg == "--progress") progress = true;
    else if (arg == "--fixed-train-seconds") cfg.cluster.fixed_train_seconds = num_double();
    else if (arg == "--compute-threads") {
      std::string reason;
      const std::string text = next();
      const int n = kernels::parse_thread_count(text.c_str(), 0, &reason);
      if (n == 0) {
        std::cerr << "--compute-threads " << text << ": " << reason << "\n";
        usage(argv[0]);
      }
      if (!reason.empty()) log_warn("--compute-threads ", text, ": ", reason);
      kernels::set_compute_threads(n);
    }
    else if (arg == "--eval-parallelism") cfg.cluster.eval_parallelism = num_int();
    else if (arg == "--log-level") {
      const auto level = parse_log_level(next());
      if (!level.has_value()) usage(argv[0]);
      set_log_level(*level);
    }
    else if (arg == "--async-ckpt") cfg.cluster.async_checkpointing = true;
    else if (arg == "--compress") compression = parse_compression(next(), argv[0]);
    else if (arg == "--bank") cfg.bank = true;
    else if (arg == "--bank-budget-mb")
      cfg.bank_budget_bytes = static_cast<std::size_t>(num_u64()) * 1024 * 1024;
    else if (arg == "--warm-start-from") cfg.warm_start_dir = next();
    else if (arg == "--warm-start-k") cfg.warm_start_k = num_int();
    else if (arg == "--mtbf") cfg.cluster.faults.mtbf_seconds = num_double();
    else if (arg == "--straggler-rate") cfg.cluster.faults.straggler_rate = num_double();
    else if (arg == "--straggler-mult")
      cfg.cluster.faults.straggler_multiplier = num_double();
    else if (arg == "--ckpt-fault-rate") {
      const double rate = num_double();
      cfg.cluster.faults.ckpt_read_fault_rate = rate;
      cfg.cluster.faults.ckpt_write_fault_rate = rate;
    }
    else if (arg == "--recovery") cfg.cluster.faults.worker_recovery_s = num_double();
    else if (arg == "--max-attempts") cfg.cluster.faults.max_attempts = num_int();
    else if (arg == "--run-dir") cfg.run_dir = next();
    else if (arg == "--resume") cfg.resume = true;
    else if (arg == "--crash-after-evals") cfg.journal_crash_after = num_long();
    else if (arg == "--no-journal-fsync") cfg.journal_fsync = false;
    else if (arg == "--serve-port") serve_port = num_int();
    else if (arg == "--sample-interval-ms") sample_interval_ms = num_long();
    else if (arg == "--series-out") series_out = next();
    else if (arg == "--profile-out") profile_out = next();
    else if (arg == "--profile-hz") profile_hz = num_int();
    else if (arg == "--stall-after-s") stall_after_s = num_double();
    else if (arg == "--inject-stall-after") {
      cfg.cluster.faults.stall_after_evals = num_long();
      if (cfg.cluster.faults.stall_wall_seconds <= 0.0)
        cfg.cluster.faults.stall_wall_seconds = 5.0;
    }
    else if (arg == "--inject-stall-s") cfg.cluster.faults.stall_wall_seconds = num_double();
    else usage(argv[0]);
  }
  if (cfg.journal_crash_after >= 0 && cfg.run_dir.empty()) {
    std::cerr << "error: --crash-after-evals requires --run-dir\n";
    return 2;
  }

  const AppConfig app = make_app(app_id, cfg.seed);
  std::cout << "app=" << app.name << " mode=" << to_string(cfg.mode)
            << " evals=" << cfg.n_evals << " workers=" << cfg.cluster.num_workers
            << " seed=" << cfg.seed << " async=" << cfg.cluster.async_checkpointing
            << " compress=" << to_string(compression)
            << " compute-threads=" << kernels::compute_threads()
            << " eval-parallelism=" << cfg.cluster.eval_parallelism << "\n";

  cfg.compression = compression;
  if (!trace_out.empty()) SpanTracer::global().set_enabled(true);

  EventBus& bus = EventBus::global();
  std::ofstream events_file;
  if (!events_out.empty()) {
    if (events_out == "-") {
      bus.set_stream(&std::cerr);
    } else {
      events_file.open(events_out, std::ios::trunc);
      if (!events_file) throw std::runtime_error("cannot open " + events_out);
      bus.set_stream(&events_file);
    }
  }
  ProgressMeter meter(cfg.n_evals);
  if (progress)
    bus.set_listener([&meter](const Event& ev) { meter.on_event(ev); });
  if (!events_out.empty() || progress) bus.set_enabled(true);

  // Live telemetry plane: watchdog + sampler + HTTP server, all optional
  // and all pure readers of telemetry state — the search itself never
  // blocks on any of them and the virtual timeline/RNG are untouched.
  const bool telemetry_on = serve_port >= 0 || !series_out.empty();
  std::unique_ptr<HealthWatchdog> watchdog;
  std::unique_ptr<TimeSeriesStore> series_store;
  std::unique_ptr<Sampler> sampler;
  std::unique_ptr<ObservabilityServer> server;
  if (telemetry_on) {
    bus.set_enabled(true);  // the watchdog's progress signal rides the bus
    watchdog = std::make_unique<HealthWatchdog>(
        HealthWatchdog::Config{.stall_after_s = stall_after_s});
    watchdog->attach(bus);
    series_store = std::make_unique<TimeSeriesStore>();
    Sampler::Config sampler_cfg;
    sampler_cfg.interval = std::chrono::milliseconds(sample_interval_ms);
    sampler = std::make_unique<Sampler>(*series_store, metrics(), sampler_cfg);
    // Poll on the sampling cadence so stall detection advances even when
    // nobody scrapes /healthz (poll() must never run under the bus lock).
    sampler->set_on_tick([&watchdog] { watchdog->poll(); });
    sampler->start();
    if (serve_port >= 0) {
      HttpServer::Config http_cfg;
      http_cfg.port = serve_port;
      server = std::make_unique<ObservabilityServer>(
          http_cfg, metrics(), series_store.get(), watchdog.get(),
          ObservabilityServer::StatusInfo{
              app.name + "-" + std::string(to_string(cfg.mode)) + "-s" +
                  std::to_string(cfg.seed),
              app.name, std::string(to_string(cfg.mode)), cfg.n_evals});
      server->start();
      std::cout << "telemetry: http://127.0.0.1:" << server->port()
                << " (/metrics /healthz /status /series /profile /criticalpath)\n";
    }
  }

  // Sampling CPU profiler: wall-clock-only instrumentation; the virtual
  // timeline and search RNG never see it (profiled and plain runs produce
  // byte-identical trace CSVs — CI cmp-gates this).
  const bool profiling_on = !profile_out.empty() || profile_hz > 0;
  const auto write_profile = [&] {
    if (profile_out.empty()) return;
    const prof::SymbolizedProfile sym =
        prof::symbolize(prof::CpuProfiler::global().snapshot());
    std::ofstream out(profile_out, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + profile_out);
    if (profile_out.size() >= 5 &&
        profile_out.compare(profile_out.size() - 5, 5, ".json") == 0) {
      prof::write_speedscope_json(out, sym, "nas_cli");
    } else {
      // Same self-describing header the /profile endpoint serves, so one
      // sniffer (analyze_trace, CI greps) handles both sources.
      out << "# swtnas cpu profile (collapsed stacks)\n"
          << "# hz " << prof::CpuProfiler::global().hz() << "\n"
          << "# samples " << sym.total_samples << "\n"
          << "# dropped " << sym.dropped_samples << "\n"
          << prof::to_collapsed(sym);
    }
  };
  if (profiling_on) {
    prof::register_current_thread("main");
    prof::ProfilerConfig prof_cfg;
    prof_cfg.hz = profile_hz > 0 ? profile_hz : 97;
    if (prof::CpuProfiler::global().start(prof_cfg)) {
      std::cout << "profiler: sampling registered threads at "
                << prof::CpuProfiler::global().hz() << " Hz\n";
      if (server != nullptr) server->set_profiler(&prof::CpuProfiler::global());
    } else {
      std::cerr << "warning: profiler unavailable: "
                << prof::CpuProfiler::global().last_error() << "\n";
    }
  }

  // SIGINT/SIGTERM: flush whatever telemetry outputs were requested, then
  // exit 128+sig (130 / 143).  The search thread keeps running while the
  // flush happens; everything written below is behind its own lock.
  const InterruptFlusher flusher([&] {
    bus.set_enabled(false);
    bus.set_listener(nullptr);
    bus.set_stream(nullptr);  // takes the bus lock: no more writers after this
    if (events_file.is_open()) events_file.flush();
    if (sampler != nullptr) {
      sampler->stop();
      sampler->tick();  // one final synchronous sample
    }
    if (!series_out.empty() && series_store != nullptr) {
      std::ofstream out(series_out, std::ios::trunc);
      if (out) write_series_csv(out, *series_store);
    }
    if (!metrics_out.empty()) {
      std::ofstream out(metrics_out, std::ios::trunc);
      if (out) write_metrics_json(out, metrics().snapshot());
    }
    if (!trace_out.empty())
      write_trace_json(trace_out, SpanTracer::global().events());
    if (profiling_on) {
      prof::CpuProfiler::global().stop();
      write_profile();
    }
    if (server != nullptr) server->stop();
    std::cerr << "\n[nas] interrupted; telemetry flushed\n";
  });

  const auto wall_start = std::chrono::steady_clock::now();
  const NasRun run = run_nas(app, cfg);
  const double wall_seconds =
      std::chrono::duration<double>(std::chrono::steady_clock::now() - wall_start).count();

  if (progress) meter.finish();
  if (profiling_on) prof::CpuProfiler::global().stop();
  if (sampler != nullptr) {
    sampler->stop();
    sampler->tick();  // capture the end-of-run gauge values
  }
  if (server != nullptr) server->stop();
  if (watchdog != nullptr) watchdog->detach();
  bus.set_enabled(false);
  bus.set_listener(nullptr);
  bus.set_stream(nullptr);
  if (!series_out.empty() && series_store != nullptr) {
    std::ofstream out(series_out, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + series_out);
    write_series_csv(out, *series_store);
    std::cout << "time series written to " << series_out << "\n";
  }

  const auto top = top_k(run.trace, 5);
  TableReport table({"rank", "arch", "score", "#params"});
  for (std::size_t i = 0; i < top.size(); ++i)
    table.add_row({std::to_string(i + 1), arch_to_string(top[i].arch),
                   TableReport::cell(top[i].score), std::to_string(top[i].param_count)});
  print_banner(std::cout, "top candidates");
  table.print(std::cout);

  std::cout << "\nmakespan            : " << TableReport::cell(run.trace.makespan, 2)
            << " virtual s\n"
            << "checkpoint overhead : "
            << TableReport::cell(run.trace.total_ckpt_overhead(), 2) << " virtual s\n"
            << "checkpoints stored  : " << run.store->count() << " ("
            << run.store->total_bytes_written() / 1024 << " KiB written)\n";
  if (const WeightBank* bank = run.store->bank(); bank != nullptr) {
    const BankStats bs = bank->stats();
    std::cout << "weight bank         : " << bs.chunk_count << " chunks, dedup ratio "
              << TableReport::cell(bs.dedup_ratio()) << " ("
              << bs.unique_bytes_written / 1024 << " KiB unique of "
              << bs.logical_bytes_written / 1024 << " KiB logical, " << bs.evicted_chunks
              << " evicted)\n";
    if (run.warm_start_seeded > 0)
      std::cout << "warm start          : " << run.warm_start_seeded
                << " checkpoints seeded from " << cfg.warm_start_dir.string() << "\n";
  }
  print_failure_summary(std::cout, run.trace);

  if (!cfg.run_dir.empty()) {
    std::cout << "journal             : " << run.journal_replayed << " replayed, "
              << run.journal_appended << " trained"
              << (run.journal_truncated_tail ? " (torn tail discarded)" : "") << "\n";
    const std::string run_trace = (cfg.run_dir / "trace.csv").string();
    write_trace_csv(run_trace, run.trace);
    std::cout << "trace written to " << run_trace << "\n";
  }
  if (!out_path.empty()) {
    write_trace_csv(out_path, run.trace);
    std::cout << "trace written to " << out_path << "\n";
  }
  if (!metrics_out.empty()) {
    const MetricsSnapshot snap = metrics().snapshot();
    print_metrics_snapshot(std::cout, snap);
    std::ofstream out(metrics_out, std::ios::trunc);
    if (!out) throw std::runtime_error("cannot open " + metrics_out);
    if (metrics_out.size() >= 4 &&
        metrics_out.compare(metrics_out.size() - 4, 4, ".csv") == 0)
      write_metrics_csv(out, snap);
    else
      write_metrics_json(out, snap);
    std::cout << "\nmetrics written to " << metrics_out << "\n";
  }
  if (!trace_out.empty()) {
    write_trace_json(trace_out, SpanTracer::global().events());
    std::cout << "span trace written to " << trace_out
              << " (load in Perfetto or chrome://tracing)\n";
  }
  if (!profile_out.empty()) {
    write_profile();
    const prof::StackProfile raw = prof::CpuProfiler::global().snapshot();
    std::cout << "cpu profile written to " << profile_out << " (" << raw.total_samples
              << " samples, " << raw.dropped_samples << " dropped; feed to "
              << "flamegraph.pl or speedscope.app)\n";
  }
  if (!events_out.empty()) {
    std::cout << bus.total_emitted() << " events ("
              << bus.emitted(EventType::kEvalFinished) << " eval_finished) streamed to "
              << (events_out == "-" ? "stderr" : events_out) << "\n";
  }
  if (!registry_dir.empty()) {
    const RunRecord rec =
        make_run_record(app.name, cfg, run.trace, wall_seconds, run.store.get());
    append_run_record(registry_dir, rec);
    std::cout << "run " << rec.run_id << " (config " << rec.config_hash
              << ") appended to " << registry_dir << "/registry.ndjson\n";
  }
  return 0;
} catch (const std::exception& e) {
  // Config validation (fault rates, worker counts, ...) throws; report it
  // as a CLI error instead of aborting through std::terminate.
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
