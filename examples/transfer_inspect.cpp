// Inspect the weight-transfer mechanics on a pair of architectures:
// prints both shape sequences, the LP and LCS matches, and what fraction of
// the receiver's parameters each heuristic initialises.
//
//   $ ./transfer_inspect [seed]
#include <cstdlib>
#include <iostream>

#include "core/transfer.hpp"
#include "exp/apps.hpp"
#include "exp/report.hpp"

int main(int argc, char** argv) {
  using namespace swt;
  const std::uint64_t seed = argc > 1 ? static_cast<std::uint64_t>(std::atoll(argv[1])) : 3;

  const SearchSpace space = make_mnist_space(8);
  Rng rng(seed);
  const ArchSeq provider_arch = space.random_arch(rng);
  // Receiver: two mutation steps away, so the sequences differ but overlap.
  ArchSeq receiver_arch = space.mutate(provider_arch, rng);
  receiver_arch = space.mutate(receiver_arch, rng);

  NetworkPtr provider = space.build(provider_arch);
  NetworkPtr receiver = space.build(receiver_arch);
  provider->init(rng);
  receiver->init(rng);

  std::cout << "Provider arch " << arch_to_string(provider_arch) << ":\n  "
            << space.describe(provider_arch) << "\n";
  std::cout << "Receiver arch " << arch_to_string(receiver_arch) << ":\n  "
            << space.describe(receiver_arch) << "\n";
  std::cout << "Architecture distance d = "
            << hamming_distance(provider_arch, receiver_arch) << "\n\n";

  const SigSeq pseq = signature_sequence(*provider);
  const SigSeq rseq = signature_sequence(*receiver);
  std::cout << "Provider shape sequence (" << pseq.size() << " layers):\n  "
            << to_string(pseq) << "\n";
  std::cout << "Receiver shape sequence (" << rseq.size() << " layers):\n  "
            << to_string(rseq) << "\n";

  for (const TransferMode mode : {TransferMode::kLP, TransferMode::kLCS}) {
    const MatchPairs pairs = match(mode, pseq, rseq);
    print_banner(std::cout, std::string(to_string(mode)) + " match");
    TableReport table({"provider layer", "receiver layer", "signature"});
    for (const auto& [pi, ri] : pairs) {
      std::string sig;
      for (const auto& sh : pseq[pi]) sig += sh.to_string() + " ";
      table.add_row({std::to_string(pi), std::to_string(ri), sig});
    }
    table.print(std::cout);

    const Checkpoint ckpt = Checkpoint::from_network(*provider, provider_arch, 0.0);
    NetworkPtr fresh = space.build(receiver_arch);
    Rng init_rng(seed + 1);
    fresh->init(init_rng);
    const TransferStats stats = apply_transfer(ckpt, *fresh, mode);
    std::cout << to_string(mode) << " transfers " << stats.layers_matched << "/"
              << stats.receiver_layers << " layers (" << stats.tensors_transferred
              << " tensors), " << stats.values_transferred << " of "
              << fresh->param_count() << " parameter values ("
              << TableReport::cell_pct(static_cast<double>(stats.values_transferred) /
                                       static_cast<double>(fresh->param_count()))
              << ")\n";
  }
  return 0;
}
