// Uno scenario: multi-source drug-response regression (R^2 objective) with a
// three-tower + trunk model, showing how weight transfer accelerates the
// full training of the discovered top-K models.
//
//   $ ./drug_response_uno [n_evals] [seed]
#include <cstdlib>
#include <iostream>

#include "exp/apps.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace swt;
  const long n_evals = argc > 1 ? std::atol(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 5;

  const AppConfig app = make_app(AppId::kUno, seed);
  std::cout << "Uno-like: 4 input sources per sample (dose=1, gene="
            << app.data.train.sample_shape(1).to_string()
            << ", drug=" << app.data.train.sample_shape(2).to_string()
            << ", extra=" << app.data.train.sample_shape(3).to_string() << "), "
            << app.data.train.size() << " train samples, objective R^2\n\n";

  TableReport table(
      {"scheme", "top-3 mean R^2 (estimated)", "full-train epochs (top-3 mean)",
       "full-train R^2 (top-3 mean)"});

  for (const TransferMode mode : {TransferMode::kNone, TransferMode::kLP, TransferMode::kLCS}) {
    NasRunConfig cfg;
    cfg.mode = mode;
    cfg.n_evals = n_evals;
    cfg.seed = seed;
    cfg.cluster.num_workers = 8;
    cfg.evolution = {.population_size = 12, .sample_size = 6};
    const NasRun run = run_nas(app, cfg);

    const auto top = top_k(run.trace, 3);
    double est = 0.0, epochs = 0.0, final_r2 = 0.0;
    for (const auto& rec : top) {
      est += rec.score;
      Checkpoint ckpt;
      const Checkpoint* resume = nullptr;
      if (mode != TransferMode::kNone && run.store->contains(rec.ckpt_key)) {
        ckpt = run.store->get(rec.ckpt_key).first;
        resume = &ckpt;
      }
      const FullTrainResult full =
          full_train(app, rec.arch, resume, mode, {.seed = seed, .with_full_pass = false});
      epochs += full.early_stop_epochs;
      final_r2 += full.early_stop_objective;
    }
    const auto k = static_cast<double>(top.size());
    table.add_row({to_string(mode), TableReport::cell(est / k),
                   TableReport::cell(epochs / k, 1), TableReport::cell(final_r2 / k)});
  }
  print_banner(std::cout, "Uno: estimation quality and full-training cost per scheme");
  table.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 8 / Table III): LP and LCS need fewer epochs\n"
               "to converge in full training, at equal or better final R^2.\n";
  return 0;
}
