// CIFAR scenario: plot (as ASCII columns) the mean candidate score over the
// NAS virtual timeline for baseline vs LCS — the single-app version of the
// paper's Fig. 7.
//
//   $ ./cifar_convergence [n_evals] [seed]
#include <cstdlib>
#include <iostream>

#include "exp/apps.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace swt;
  const long n_evals = argc > 1 ? std::atol(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 2;

  const AppConfig app = make_app(AppId::kCifar, seed);
  std::cout << "CIFAR-like: " << app.data.train.size() << " train images "
            << app.data.train.sample_shape().to_string() << ", 10 classes; "
            << app.space.num_vns() << "-VN VGG-style search space\n\n";

  Trace baseline_trace, lcs_trace;
  for (const TransferMode mode : {TransferMode::kNone, TransferMode::kLCS}) {
    NasRunConfig cfg;
    cfg.mode = mode;
    cfg.n_evals = n_evals;
    cfg.seed = seed;
    cfg.cluster.num_workers = 8;
    cfg.evolution = {.population_size = 12, .sample_size = 6};
    NasRun run = run_nas(app, cfg);
    (mode == TransferMode::kNone ? baseline_trace : lcs_trace) = std::move(run.trace);
  }

  const double horizon = std::min(baseline_trace.makespan, lcs_trace.makespan);
  const double slot = horizon / 12.0;
  const auto base_pts = bucket_scores(baseline_trace, slot);
  const auto lcs_pts = bucket_scores(lcs_trace, slot);

  print_banner(std::cout, "CIFAR: mean candidate score per virtual-time slot");
  TableReport table({"slot end (s)", "baseline", "LCS", "bar (baseline . / LCS #)"});
  auto bar = [](double v) {
    const int len = std::max(0, std::min(40, static_cast<int>(v * 40)));
    return std::string(static_cast<std::size_t>(len), '#');
  };
  std::size_t bi = 0, li = 0;
  while (bi < base_pts.size() || li < lcs_pts.size()) {
    const double tb = bi < base_pts.size() ? base_pts[bi].slot_end : 1e300;
    const double tl = li < lcs_pts.size() ? lcs_pts[li].slot_end : 1e300;
    const double t = std::min(tb, tl);
    std::string base_cell = "-", lcs_cell = "-", bar_cell;
    if (tb == t) {
      base_cell = TableReport::cell(base_pts[bi].mean);
      bar_cell = std::string(
          static_cast<std::size_t>(std::max(0.0, base_pts[bi].mean) * 40), '.');
      ++bi;
    }
    if (tl == t) {
      lcs_cell = TableReport::cell(lcs_pts[li].mean);
      bar_cell = bar(lcs_pts[li].mean);
      ++li;
    }
    table.add_row({TableReport::cell(t, 1), base_cell, lcs_cell, bar_cell});
  }
  table.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 7): after the random warm-up phase the LCS\n"
               "curve rises above the baseline, because children start from their\n"
               "parent's weights instead of random initialisation.\n";
  return 0;
}
