// Regression gate over the run registry (the CI half of the observatory).
//
//   $ ./compare_runs --registry-dir runs/                 # latest vs previous
//   $ ./compare_runs --registry-dir runs/ --baseline-file ci/baseline.json
//
// Diffs a candidate run record against a baseline with configurable
// tolerances and exits non-zero when the candidate regressed, so a CI job
// can gate on search quality, makespan, checkpoint overhead and fault
// counters the same way it gates on unit tests.
//
// Exit codes: 0 = no regression, 1 = regression detected, 2 = usage/IO error.
#include <fstream>
#include <iostream>
#include <optional>
#include <string>

#include "exp/registry.hpp"
#include "exp/report.hpp"

namespace {

using namespace swt;

[[noreturn]] void usage(const char* argv0) {
  std::cerr << "usage: " << argv0
            << " --registry-dir DIR [--baseline RUN_ID] [--candidate RUN_ID]\n"
               "       [--baseline-file FILE] [--score-drop X] [--makespan-slack X]\n"
               "       [--overhead-slack X] [--extra-crashes N] [--extra-lost N]\n"
               "\n"
               "Compares two run records from DIR/registry.ndjson (default: the\n"
               "newest record against the one before it).  --baseline-file reads the\n"
               "baseline record from a standalone JSON file instead — use this to\n"
               "pin a committed golden record in CI.  Negative slack disables that\n"
               "check.  Exits 1 when the candidate regressed beyond the thresholds.\n";
  std::exit(2);
}

std::optional<RunRecord> find_record(const std::vector<RunRecord>& records,
                                     const std::string& run_id) {
  for (auto it = records.rbegin(); it != records.rend(); ++it)
    if (it->run_id == run_id) return *it;
  return std::nullopt;
}

RunRecord read_record_file(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::string line;
  while (std::getline(in, line))
    if (!line.empty()) return parse_run_record(line);
  throw std::runtime_error("no record found in " + path);
}

void print_record(std::ostream& os, const char* role, const RunRecord& rec) {
  os << role << ": " << rec.run_id << " (" << rec.timestamp << ", git "
     << rec.git_describe << ", config " << rec.config_hash << ")\n";
}

}  // namespace

int main(int argc, char** argv) try {
  std::string registry_dir;
  std::string baseline_id;
  std::string candidate_id;
  std::string baseline_file;
  RegressionThresholds thr;

  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    const auto next = [&]() -> std::string {
      if (i + 1 >= argc) usage(argv[0]);
      return argv[++i];
    };
    if (arg == "--registry-dir") registry_dir = next();
    else if (arg == "--baseline") baseline_id = next();
    else if (arg == "--candidate") candidate_id = next();
    else if (arg == "--baseline-file") baseline_file = next();
    else if (arg == "--score-drop") thr.score_drop = std::stod(next());
    else if (arg == "--makespan-slack") thr.makespan_slack = std::stod(next());
    else if (arg == "--overhead-slack") thr.overhead_slack = std::stod(next());
    else if (arg == "--extra-crashes") thr.extra_crashes = std::stol(next());
    else if (arg == "--extra-lost") thr.extra_lost = std::stol(next());
    else usage(argv[0]);
  }
  if (registry_dir.empty()) usage(argv[0]);
  if (!baseline_id.empty() && !baseline_file.empty()) usage(argv[0]);

  const std::vector<RunRecord> records = read_registry(registry_dir);
  if (records.empty()) {
    std::cerr << "error: registry " << registry_dir << "/registry.ndjson is empty\n";
    return 2;
  }

  RunRecord candidate = records.back();
  if (!candidate_id.empty()) {
    const auto found = find_record(records, candidate_id);
    if (!found) {
      std::cerr << "error: candidate run '" << candidate_id << "' not in registry\n";
      return 2;
    }
    candidate = *found;
  }

  RunRecord baseline;
  if (!baseline_file.empty()) {
    baseline = read_record_file(baseline_file);
  } else if (!baseline_id.empty()) {
    const auto found = find_record(records, baseline_id);
    if (!found) {
      std::cerr << "error: baseline run '" << baseline_id << "' not in registry\n";
      return 2;
    }
    baseline = *found;
  } else {
    // Default: previous record in the registry (skipping the candidate itself).
    std::optional<RunRecord> prev;
    for (auto it = records.rbegin(); it != records.rend(); ++it) {
      if (it->run_id == candidate.run_id) continue;
      prev = *it;
      break;
    }
    if (!prev) {
      std::cerr << "error: registry holds only the candidate run; nothing to "
                   "compare against (seed a baseline first)\n";
      return 2;
    }
    baseline = *prev;
  }

  print_record(std::cout, "baseline ", baseline);
  print_record(std::cout, "candidate", candidate);
  if (baseline.config_hash != candidate.config_hash)
    std::cout << "warning: config hashes differ — comparing apples to oranges\n";

  TableReport table({"metric", "baseline", "candidate"});
  table.add_row({"best_score", TableReport::cell(baseline.best_score),
                 TableReport::cell(candidate.best_score)});
  table.add_row({"makespan", TableReport::cell(baseline.makespan, 2),
                 TableReport::cell(candidate.makespan, 2)});
  table.add_row({"ckpt_overhead_s", TableReport::cell(baseline.ckpt_overhead_s, 2),
                 TableReport::cell(candidate.ckpt_overhead_s, 2)});
  table.add_row({"evals_completed", std::to_string(baseline.evals_completed),
                 std::to_string(candidate.evals_completed)});
  table.add_row({"crashed_attempts", std::to_string(baseline.crashed_attempts),
                 std::to_string(candidate.crashed_attempts)});
  table.add_row({"lost_evaluations", std::to_string(baseline.lost_evaluations),
                 std::to_string(candidate.lost_evaluations)});
  table.add_row({"transfer_hit_rate", TableReport::cell(baseline.transfer_hit_rate),
                 TableReport::cell(candidate.transfer_hit_rate)});
  table.print(std::cout);

  const std::vector<Regression> regressions = compare_records(baseline, candidate, thr);
  if (regressions.empty()) {
    std::cout << "\nOK: no regression beyond thresholds\n";
    return 0;
  }
  std::cout << "\nREGRESSION: " << regressions.size() << " metric(s) degraded\n";
  for (const auto& r : regressions)
    std::cout << "  " << r.metric << ": baseline " << TableReport::cell(r.baseline)
              << " -> candidate " << TableReport::cell(r.candidate) << "  (" << r.detail
              << ")\n";
  return 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 2;
}
