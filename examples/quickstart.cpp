// Quickstart: run a small NAS with LCS weight transfer on the MNIST-like
// application and print the best architectures found.
//
//   $ ./quickstart [n_evals] [seed]
//
// This walks the whole public API surface: make an application (search space
// + synthetic dataset), run regularized-evolution NAS on the virtual cluster
// with selective weight transfer, inspect the trace, and fully train the
// winner.
#include <cstdlib>
#include <iostream>

#include "exp/apps.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace swt;
  const long n_evals = argc > 1 ? std::atol(argv[1]) : 48;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 7;

  // 1. An application bundles a search space, a dataset and train options.
  const AppConfig app = make_app(AppId::kMnist, seed);
  std::cout << "Application: " << app.name << "\n"
            << "  search space: " << app.space.name << " with " << app.space.num_vns()
            << " variable nodes, ~10^"
            << static_cast<int>(app.space.log10_cardinality()) << " candidates\n"
            << "  train/val: " << app.data.train.size() << "/" << app.data.val.size()
            << " samples\n\n";

  // 2. Run NAS: regularized evolution + LCS weight transfer on a simulated
  //    8-worker cluster.  Every candidate is genuinely trained for one epoch.
  NasRunConfig cfg;
  cfg.mode = TransferMode::kLCS;
  cfg.n_evals = n_evals;
  cfg.seed = seed;
  cfg.cluster.num_workers = 8;
  cfg.evolution = {.population_size = 12, .sample_size = 6};
  std::cout << "Running " << n_evals << " candidate evaluations (LCS transfer)...\n";
  NasRun run = run_nas(app, cfg);

  // 3. Inspect the trace.
  TableReport table({"rank", "arch", "score", "#params", "tensors transferred"});
  const auto top = top_k(run.trace, 5);
  for (std::size_t i = 0; i < top.size(); ++i) {
    const auto& r = top[i];
    table.add_row({std::to_string(i + 1), arch_to_string(r.arch),
                   TableReport::cell(r.score), std::to_string(r.param_count),
                   std::to_string(r.tensors_transferred)});
  }
  print_banner(std::cout, "top-5 candidates after estimation");
  table.print(std::cout);

  // 4. Fully train the winner, resuming from its checkpoint (this is where
  //    the paper's 1.4-1.5x full-training speedup comes from).
  const auto& best = top.front();
  const Checkpoint best_ckpt = run.store->get(best.ckpt_key).first;
  const FullTrainResult full = full_train(app, best.arch, &best_ckpt, TransferMode::kLCS,
                                          {.seed = seed, .with_full_pass = false});
  std::cout << "\nWinner fully trained (early stopping): objective = "
            << TableReport::cell(full.early_stop_objective) << " after "
            << full.early_stop_epochs << " epochs\n"
            << "Winner ops: " << app.space.describe(best.arch) << "\n";
  return 0;
}
