// OpenMetrics exposition linter for /metrics scrapes.
//
//   $ curl -s localhost:9f/metrics | ./lint_openmetrics
//   $ ./lint_openmetrics scrape.txt
//
// Exit 0 when the document passes, 1 with one issue per line on stderr
// otherwise.  CI pipes the live /metrics scrape through this to catch
// format drift (a scraper-breaking change fails the job, not a dashboard).
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>

#include "serve/openmetrics.hpp"

int main(int argc, char** argv) {
  std::ostringstream buf;
  if (argc > 1) {
    std::ifstream in(argv[1]);
    if (!in) {
      std::cerr << "lint_openmetrics: cannot open " << argv[1] << "\n";
      return 2;
    }
    buf << in.rdbuf();
  } else {
    buf << std::cin.rdbuf();
  }
  const swt::OpenMetricsReport report = swt::validate_openmetrics(buf.str());
  if (report.ok()) {
    std::cout << "OK: " << report.families << " families, " << report.samples
              << " samples\n";
    return 0;
  }
  for (const swt::OpenMetricsIssue& issue : report.issues)
    std::cerr << "line " << issue.line << ": " << issue.message << "\n";
  std::cerr << report.issues.size() << " issue(s)\n";
  return 1;
}
