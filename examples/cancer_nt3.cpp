// NT3 scenario: 1-D convolutional NAS for a cancer-research-style
// classification task (gene-expression sequences -> normal/tumor), comparing
// baseline estimation against LP and LCS weight transfer side by side.
//
//   $ ./cancer_nt3 [n_evals] [seed]
#include <cstdlib>
#include <iostream>

#include "exp/apps.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"

int main(int argc, char** argv) {
  using namespace swt;
  const long n_evals = argc > 1 ? std::atol(argv[1]) : 60;
  const std::uint64_t seed = argc > 2 ? static_cast<std::uint64_t>(std::atoll(argv[2])) : 11;

  const AppConfig app = make_app(AppId::kNt3, seed);
  std::cout << "NT3-like: " << app.data.train.size() << " train / " << app.data.val.size()
            << " validation sequences of shape "
            << app.data.train.sample_shape().to_string() << ", 2 classes\n"
            << "Search space: " << app.space.num_vns() << " variable nodes (Conv1D, Act, "
            << "Pool, Dense, Act, Dropout, Dense, Act, Dropout)\n\n";

  TableReport table({"scheme", "best score", "mean of top-5", "mean #tensors transferred"});
  for (const TransferMode mode : {TransferMode::kNone, TransferMode::kLP, TransferMode::kLCS}) {
    NasRunConfig cfg;
    cfg.mode = mode;
    cfg.n_evals = n_evals;
    cfg.seed = seed;
    cfg.cluster.num_workers = 8;
    cfg.evolution = {.population_size = 12, .sample_size = 6};
    const NasRun run = run_nas(app, cfg);

    const auto top = top_k(run.trace, 5);
    double top_sum = 0.0;
    for (const auto& r : top) top_sum += r.score;
    double transferred = 0.0;
    for (const auto& r : run.trace.records)
      transferred += static_cast<double>(r.tensors_transferred);
    table.add_row({to_string(mode), TableReport::cell(top.front().score),
                   TableReport::cell(top_sum / static_cast<double>(top.size())),
                   TableReport::cell(transferred / static_cast<double>(n_evals), 1)});
  }
  print_banner(std::cout, "NT3: candidate estimation quality per scheme (" +
                              std::to_string(n_evals) + " evaluations each)");
  table.print(std::cout);
  std::cout << "\nExpected shape (paper Fig. 7): LP/LCS reach higher scores than the\n"
               "baseline within the same evaluation budget, with NT3 noisier than the\n"
               "other applications.\n";
  return 0;
}
