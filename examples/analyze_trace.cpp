// Offline trace analysis: read a CSV trace produced by nas_cli (or any
// bench) and explain the weight-transfer dynamics — lineage depths,
// parent-child score deltas, per-depth score means and checkpoint traffic.
//
//   $ ./nas_cli --app cifar --mode lcs --evals 100 --out trace.csv
//   $ ./analyze_trace trace.csv
//
// Without an argument the example runs a small NAS itself and analyses it.
#include <iostream>

#include "common/stats.hpp"
#include "exp/analysis.hpp"
#include "exp/apps.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/trace_io.hpp"

int main(int argc, char** argv) {
  using namespace swt;

  Trace trace;
  if (argc > 1) {
    trace = read_trace_csv(argv[1]);
    std::cout << "Loaded " << trace.records.size() << " records from " << argv[1] << "\n";
  } else {
    std::cout << "No trace given; running a 60-candidate LCS search on CIFAR...\n";
    const AppConfig app = make_app(AppId::kCifar, 17);
    NasRunConfig cfg;
    cfg.mode = TransferMode::kLCS;
    cfg.n_evals = 60;
    cfg.seed = 17;
    cfg.cluster.num_workers = 8;
    trace = run_nas(app, cfg).trace;
  }

  const LineageSummary lineage = summarize_lineage(trace);
  print_banner(std::cout, "lineage (accumulated training across transfer chains)");
  std::cout << "mean lineage depth : " << TableReport::cell(lineage.mean_depth, 2) << "\n"
            << "max lineage depth  : " << lineage.max_depth << "\n"
            << "transfer fraction  : " << TableReport::cell_pct(lineage.transfer_fraction)
            << " of evaluations inherited weights\n";

  print_banner(std::cout, "mean score by lineage depth");
  TableReport depth_table({"depth (effective epochs)", "candidates", "mean score"});
  const auto depths = lineage_depths(trace);
  std::map<int, RunningStats> buckets;
  for (const auto& r : trace.records) buckets[depths.at(r.id)].add(r.score);
  for (const auto& [d, stats] : buckets)
    depth_table.add_row({std::to_string(d), std::to_string(stats.count()),
                         TableReport::cell(stats.mean())});
  depth_table.print(std::cout);

  const ParentChildStats pc = parent_child_stats(trace);
  print_banner(std::cout, "parent -> child transfer outcomes");
  std::cout << "transferred children       : " << pc.pairs << "\n"
            << "child beat its provider    : " << TableReport::cell_pct(pc.improved_fraction())
            << "\n"
            << "mean score delta (child-p) : " << TableReport::cell(pc.mean_delta) << "\n";

  double read_cost = 0.0, write_cost = 0.0;
  std::size_t bytes = 0;
  for (const auto& r : trace.records) {
    read_cost += r.ckpt_read_cost + r.ckpt_read_wait;
    write_cost += r.ckpt_write_charged;
    bytes += r.ckpt_bytes;
  }
  print_banner(std::cout, "checkpoint traffic");
  std::cout << "bytes written        : " << bytes / 1024 << " KiB\n"
            << "worker read cost     : " << TableReport::cell(read_cost, 2) << " virtual s\n"
            << "worker write cost    : " << TableReport::cell(write_cost, 2) << " virtual s\n"
            << "makespan             : " << TableReport::cell(trace.makespan, 2)
            << " virtual s on " << trace.num_workers << " workers\n";
  std::cout << "\nReading: rising score-by-depth means confirm the paper's Section III\n"
               "mechanism — transferred children effectively resume their lineage's\n"
               "training, so deeper lineages behave like longer-trained models.\n";
  return 0;
}
