// Offline trace analysis: read a CSV trace produced by nas_cli (or any
// bench) and explain the weight-transfer dynamics — lineage depths,
// parent-child score deltas, per-depth score means and checkpoint traffic.
// JSON inputs are the observability layer's files instead: a span trace
// (--trace-out) prints a per-phase virtual-time-share table plus a
// critical-path summary, a metrics snapshot (--metrics-out) prints its
// counters and histogram aggregates.  Collapsed CPU profiles (--profile-out
// or GET /profile) print their top-10 hottest stacks.
//
//   $ ./nas_cli --app cifar --mode lcs --evals 100 --out trace.csv
//               --trace-out spans.json --metrics-out metrics.json
//               --profile-out prof.collapsed
//   $ ./analyze_trace trace.csv
//   $ ./analyze_trace spans.json
//   $ ./analyze_trace metrics.json
//   $ ./analyze_trace prof.collapsed
//
// Without an argument the example runs a small NAS itself and analyses it.
#include <algorithm>
#include <fstream>
#include <iostream>
#include <map>
#include <set>
#include <sstream>

#include "common/stats.hpp"
#include "exp/analysis.hpp"
#include "exp/apps.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/trace_io.hpp"
#include "obs/json.hpp"
#include "obs/metrics.hpp"
#include "obs/prof/critical_path.hpp"
#include "obs/prof/sampler.hpp"
#include "obs/series.hpp"
#include "obs/span_tracer.hpp"

namespace {

using namespace swt;

/// Per-phase virtual-time shares of a span trace: how every worker-second
/// of the simulated cluster was spent.  Child spans carry the phase
/// category (train / transfer / checkpoint / idle / fault); the remainder
/// up to workers x wall-span is scheduler idle time.
void analyze_span_json(const std::vector<TraceEvent>& events) {
  std::map<std::string, double> phase_seconds;
  double top_level_seconds = 0.0;
  double first_ts = 0.0, last_end = 0.0;
  bool any = false;
  std::set<int> workers;
  for (const TraceEvent& ev : events) {
    if (ev.ph != 'X' || ev.pid != kTraceVirtualPid) continue;
    workers.insert(ev.tid);
    if (!any || ev.ts_us < first_ts) first_ts = ev.ts_us;
    last_end = std::max(last_end, ev.ts_us + ev.dur_us);
    any = true;
    if (ev.cat == "eval") {
      top_level_seconds += ev.dur_us / 1e6;  // whole-evaluation envelope
    } else if (ev.cat == "fault") {
      top_level_seconds += ev.dur_us / 1e6;  // crash work + recovery hole
      phase_seconds["fault"] += ev.dur_us / 1e6;
    } else {
      phase_seconds[ev.cat == "idle" ? "checkpoint stall" : ev.cat] += ev.dur_us / 1e6;
    }
  }
  if (!any) {
    std::cout << "No virtual-cluster spans found in the trace.\n";
    return;
  }
  const double span_seconds = (last_end - first_ts) / 1e6;
  const double worker_seconds = span_seconds * static_cast<double>(workers.size());
  phase_seconds["idle"] = std::max(0.0, worker_seconds - top_level_seconds);

  print_banner(std::cout, "virtual time share by phase");
  std::cout << workers.size() << " workers, " << TableReport::cell(span_seconds, 2)
            << " virtual s makespan, " << TableReport::cell(worker_seconds, 2)
            << " worker-seconds total\n\n";
  TableReport table({"phase", "virtual s", "share"});
  // Stable presentation order, largest systems concern first.
  const char* order[] = {"train", "transfer", "checkpoint", "checkpoint stall",
                         "fault", "idle"};
  for (const char* phase : order) {
    const auto it = phase_seconds.find(phase);
    if (it == phase_seconds.end() || it->second <= 0.0) continue;
    table.add_row({phase, TableReport::cell(it->second, 2),
                   TableReport::cell_pct(it->second / worker_seconds)});
  }
  table.print(std::cout);
  std::cout << "\nReading: the paper's \"low and scalable overhead\" claim holds when\n"
               "checkpoint (+stall) stays a small share next to train; a large idle\n"
               "share indicates the scheduler starves workers at this scale.\n";

  // Critical-path summary: which chain of evaluations the makespan actually
  // sits on, and what removing each cost class would be worth (full detail
  // in the critical_path example).
  const prof::CriticalPathInput input = prof::critical_path_input_from_events(events);
  if (input.evals.empty()) return;
  const prof::CriticalPathReport report = prof::analyze_critical_path(input);
  print_banner(std::cout, "critical path");
  std::cout << report.path.size() << " evaluations on the path, "
            << TableReport::cell(report.path_seconds, 2) << " virtual s, "
            << TableReport::cell(report.path_wait_seconds, 2)
            << " s scheduler wait between them\n\n";
  TableReport what_if({"what-if", "removes", "est. speedup"});
  for (const prof::WhatIf& w : report.what_ifs)
    what_if.add_row({w.name, TableReport::cell(w.removed_seconds, 2) + " s",
                     TableReport::cell(w.est_speedup, 3) + "x"});
  what_if.print(std::cout);
}

/// Collapsed CPU profile (nas_cli --profile-out / GET /profile): the top-10
/// hottest stacks by sample count, leaf frame first — "where did the wall
/// clock actually go?" at a glance, without leaving the terminal.
void analyze_collapsed(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  const prof::SymbolizedProfile prof = prof::parse_collapsed(in);
  if (prof.stacks.empty()) {
    std::cout << "No samples in " << path << ".\n";
    return;
  }
  std::uint64_t total = 0;
  for (const auto& [frames, count] : prof.stacks) total += count;

  print_banner(std::cout, "top-10 hottest stacks (" + std::to_string(total) +
                              " samples)");
  std::vector<std::pair<std::vector<std::string>, std::uint64_t>> stacks = prof.stacks;
  std::stable_sort(stacks.begin(), stacks.end(),
                   [](const auto& a, const auto& b) { return a.second > b.second; });
  if (stacks.size() > 10) stacks.resize(10);
  const auto shorten = [](std::string s) {
    // Strip template/argument noise so the table stays one line per stack.
    const auto paren = s.find('(');
    if (paren != std::string::npos) s.resize(paren);
    const auto angle = s.find('<');
    if (angle != std::string::npos) s.resize(angle);
    if (s.size() > 56) s = s.substr(0, 53) + "...";
    return s;
  };
  TableReport table({"samples", "share", "depth", "leaf frame"});
  for (const auto& [frames, count] : stacks)
    table.add_row({std::to_string(count),
                   TableReport::cell_pct(static_cast<double>(count) /
                                         static_cast<double>(total)),
                   std::to_string(frames.size()),
                   frames.empty() ? "?" : shorten(frames.back())});
  table.print(std::cout);
  std::cout << "\nReading: kernel frames (swt::kernels::*) dominating is healthy —\n"
               "the simulator is compute-bound; allocator or checkpoint frames at\n"
               "the top are the optimization targets.  Feed the same file to\n"
               "flamegraph.pl or speedscope.app for the interactive view.\n";
}

void analyze_metrics_json(const JsonValue& doc) {
  MetricsSnapshot snap;
  for (const auto& [name, v] : doc.at("counters").object)
    snap.counters[name] = static_cast<std::int64_t>(v.number);
  for (const auto& [name, v] : doc.at("gauges").object) snap.gauges[name] = v.number;
  for (const auto& [name, v] : doc.at("histograms").object) {
    HistogramSnapshot h;
    h.count = static_cast<std::uint64_t>(v.number_or("count", 0.0));
    h.sum = v.number_or("sum", 0.0);
    h.min = v.number_or("min", 0.0);
    h.max = v.number_or("max", 0.0);
    h.p50 = v.number_or("p50", 0.0);
    h.p90 = v.number_or("p90", 0.0);
    h.p99 = v.number_or("p99", 0.0);
    snap.histograms[name] = std::move(h);
  }
  print_metrics_snapshot(std::cout, snap);
}

/// Unicode sparkline of `pts`, downsampled to `width` buckets (mean per
/// bucket).  Flat series render as a mid-level bar, not noise.
std::string sparkline(const std::vector<SeriesPoint>& pts, std::size_t width = 48) {
  static const char* kBars[] = {"▁", "▂", "▃", "▄",
                                "▅", "▆", "▇", "█"};
  if (pts.empty()) return "";
  double lo = pts.front().value, hi = pts.front().value;
  for (const SeriesPoint& p : pts) {
    lo = std::min(lo, p.value);
    hi = std::max(hi, p.value);
  }
  const std::size_t buckets = std::min(width, pts.size());
  std::string out;
  for (std::size_t b = 0; b < buckets; ++b) {
    const std::size_t begin = b * pts.size() / buckets;
    const std::size_t end = std::max(begin + 1, (b + 1) * pts.size() / buckets);
    double mean = 0.0;
    for (std::size_t i = begin; i < end; ++i) mean += pts[i].value;
    mean /= static_cast<double>(end - begin);
    const int level =
        hi > lo ? std::clamp(static_cast<int>((mean - lo) / (hi - lo) * 7.999), 0, 7)
                : 3;
    out += kBars[level];
  }
  return out;
}

/// Live-telemetry series CSV (nas_cli --series-out / GET /series?format=csv):
/// one sparkline row per series over wall time, with best-score progress
/// called out first — the "did the search keep improving while it burned
/// wall-clock?" question the time-series plane exists to answer.
void analyze_series_csv(const std::string& path) {
  TimeSeriesStore store;
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  read_series_csv(in, store);
  const auto names = store.names();
  if (names.empty()) {
    std::cout << "No series in " << path << ".\n";
    return;
  }

  const std::vector<SeriesPoint> best = store.points("quality.best_score");
  if (!best.empty()) {
    print_banner(std::cout, "best score over wall time");
    std::cout << "  " << sparkline(best) << "\n  "
              << TableReport::cell(best.front().value) << " @ "
              << TableReport::cell(best.front().wall_s, 1) << "s  ->  "
              << TableReport::cell(best.back().value) << " @ "
              << TableReport::cell(best.back().wall_s, 1) << "s wall ("
              << best.size() << " samples)\n";
  }

  print_banner(std::cout, "sampled series");
  TableReport table({"series", "n", "first", "last", "trend"});
  for (const std::string& name : names) {
    const auto pts = store.points(name);
    if (pts.empty()) continue;
    table.add_row({name, std::to_string(pts.size()),
                   TableReport::cell(pts.front().value),
                   TableReport::cell(pts.back().value), sparkline(pts, 32)});
  }
  table.print(std::cout);
  std::cout << "\nReading: best_score should climb early and plateau; a flat\n"
               "evals_completed_total alongside advancing wall time is the stall\n"
               "signature the health watchdog turns into a 503.\n";
}

/// Dispatch a .json input on its content: span traces carry "traceEvents",
/// metrics snapshots carry "counters".
void analyze_json(const std::string& path) {
  std::ifstream in(path);
  if (!in) throw std::runtime_error("cannot open " + path);
  std::ostringstream buffer;
  buffer << in.rdbuf();
  const JsonValue doc = parse_json(buffer.str());
  if (doc.contains("traceEvents")) {
    std::vector<TraceEvent> events;
    {
      std::istringstream replay(buffer.str());
      events = read_trace_json(replay);
    }
    std::cout << "Loaded " << events.size() << " trace events from " << path << "\n";
    analyze_span_json(events);
  } else if (doc.contains("counters")) {
    std::cout << "Loaded metrics snapshot from " << path << "\n";
    analyze_metrics_json(doc);
  } else {
    throw std::runtime_error(path + ": neither a span trace nor a metrics snapshot");
  }
}

}  // namespace

int main(int argc, char** argv) try {
  using namespace swt;

  Trace trace;
  if (argc > 1) {
    const std::string path = argv[1];
    if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
      analyze_json(path);
      return 0;
    }
    // Non-JSON dispatch by content: the telemetry sampler's series files
    // start with "series,wall_s,...", candidate traces with "id,..." (after
    // a '#' summary line), collapsed CPU profiles with the "# swtnas cpu
    // profile" header (or, for external files, a ".collapsed" suffix).
    {
      std::ifstream sniff(path);
      std::string header;
      const bool have_header = sniff && !!std::getline(sniff, header);
      if (have_header && header.rfind("series,", 0) == 0) {
        analyze_series_csv(path);
        return 0;
      }
      const bool collapsed_ext =
          path.size() >= 10 && path.compare(path.size() - 10, 10, ".collapsed") == 0;
      if (collapsed_ext ||
          (have_header && header.rfind("# swtnas cpu profile", 0) == 0)) {
        analyze_collapsed(path);
        return 0;
      }
    }
    trace = read_trace_csv(path);
    std::cout << "Loaded " << trace.records.size() << " records from " << argv[1] << "\n";
  } else {
    std::cout << "No trace given; running a 60-candidate LCS search on CIFAR...\n";
    const AppConfig app = make_app(AppId::kCifar, 17);
    NasRunConfig cfg;
    cfg.mode = TransferMode::kLCS;
    cfg.n_evals = 60;
    cfg.seed = 17;
    cfg.cluster.num_workers = 8;
    trace = run_nas(app, cfg).trace;
  }

  const LineageSummary lineage = summarize_lineage(trace);
  print_banner(std::cout, "lineage (accumulated training across transfer chains)");
  std::cout << "mean lineage depth : " << TableReport::cell(lineage.mean_depth, 2) << "\n"
            << "max lineage depth  : " << lineage.max_depth << "\n"
            << "transfer fraction  : " << TableReport::cell_pct(lineage.transfer_fraction)
            << " of evaluations inherited weights\n";

  print_banner(std::cout, "mean score by lineage depth");
  TableReport depth_table({"depth (effective epochs)", "candidates", "mean score"});
  const auto depths = lineage_depths(trace);
  std::map<int, RunningStats> buckets;
  for (const auto& r : trace.records) buckets[depths.at(r.id)].add(r.score);
  for (const auto& [d, stats] : buckets)
    depth_table.add_row({std::to_string(d), std::to_string(stats.count()),
                         TableReport::cell(stats.mean())});
  depth_table.print(std::cout);

  const ParentChildStats pc = parent_child_stats(trace);
  print_banner(std::cout, "parent -> child transfer outcomes");
  std::cout << "transferred children       : " << pc.pairs << "\n"
            << "child beat its provider    : " << TableReport::cell_pct(pc.improved_fraction())
            << "\n"
            << "mean score delta (child-p) : " << TableReport::cell(pc.mean_delta) << "\n";

  double read_cost = 0.0, write_cost = 0.0;
  std::size_t bytes = 0;
  for (const auto& r : trace.records) {
    read_cost += r.ckpt_read_cost + r.ckpt_read_wait;
    write_cost += r.ckpt_write_charged;
    bytes += r.ckpt_bytes;
  }
  print_banner(std::cout, "checkpoint traffic");
  std::cout << "bytes written        : " << bytes / 1024 << " KiB\n"
            << "worker read cost     : " << TableReport::cell(read_cost, 2) << " virtual s\n"
            << "worker write cost    : " << TableReport::cell(write_cost, 2) << " virtual s\n"
            << "makespan             : " << TableReport::cell(trace.makespan, 2)
            << " virtual s on " << trace.num_workers << " workers\n";
  std::cout << "\nReading: rising score-by-depth means confirm the paper's Section III\n"
               "mechanism — transferred children effectively resume their lineage's\n"
               "training, so deeper lineages behave like longer-trained models.\n";
  return 0;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
