// Critical-path analysis of a search run: *why* is the makespan what it is?
//
// Reads a span trace (nas_cli --trace-out spans.json) and/or a candidate
// trace CSV (nas_cli --out trace.csv), reconstructs the virtual-timeline
// dispatch DAG, and reports:
//   - per-phase worker-second shares (train / transfer / ckpt / stall /
//     fault / idle) — the live-run form of the paper's Fig. 10/11,
//   - the critical path (binding predecessor chain ending at the last
//     evaluation) with its scheduler-wait gaps,
//   - the top-k blocking evaluations on that path,
//   - what-if speedup estimates (zero-cost checkpointing, free transfer,
//     no faults, perfect scheduling) — lower bounds by construction.
//
//   $ ./nas_cli --app mnist --mode lcs --evals 80 --out trace.csv
//               --trace-out spans.json
//   $ ./critical_path spans.json trace.csv   # both: cross-checks shares
//   $ ./critical_path trace.csv --json       # machine-readable report
//
// Without a file the example runs a small LCS search itself.  The process
// exits non-zero if any report's phase shares fail to sum to 100% +- 1%,
// which CI uses as the acceptance gate for the time-share decomposition.
#include <cmath>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "exp/analysis.hpp"
#include "exp/apps.hpp"
#include "exp/report.hpp"
#include "exp/runner.hpp"
#include "exp/trace_io.hpp"
#include "obs/prof/critical_path.hpp"
#include "obs/span_tracer.hpp"

namespace {

using namespace swt;

prof::CriticalPathInput load_input(const std::string& path) {
  if (path.size() >= 5 && path.compare(path.size() - 5, 5, ".json") == 0) {
    std::ifstream in(path);
    if (!in) throw std::runtime_error("cannot open " + path);
    return prof::critical_path_input_from_events(read_trace_json(in));
  }
  return critical_path_input(read_trace_csv(path));
}

/// Returns true when the phase shares pass the 100% +- 1% gate.
bool print_report(const std::string& label, const prof::CriticalPathReport& r) {
  print_banner(std::cout, "critical path: " + label);
  if (r.path.empty()) {
    std::cout << "no completed evaluations found.\n";
    return false;
  }
  std::cout << r.workers << " workers, " << TableReport::cell(r.makespan - r.t0, 2)
            << " virtual s makespan, " << TableReport::cell(r.worker_seconds, 2)
            << " worker-seconds\n\n";

  TableReport phases({"phase", "worker s", "share"});
  const char* order[] = {"train", "transfer", "checkpoint", "checkpoint stall",
                         "fault", "idle"};
  for (const char* phase : order) {
    const auto it = r.phase_seconds.find(phase);
    if (it == r.phase_seconds.end() || it->second <= 0.0) continue;
    phases.add_row({phase, TableReport::cell(it->second, 2),
                    TableReport::cell_pct(it->second / r.worker_seconds)});
  }
  phases.print(std::cout);
  const double share_pct = r.share_sum * 100.0;
  const bool share_ok = std::abs(share_pct - 100.0) <= 1.0;
  std::cout << "share sum: " << TableReport::cell(share_pct, 2) << "% ("
            << (share_ok ? "PASS" : "FAIL") << ": must be 100% +- 1%)\n";

  std::cout << "\ncritical path: " << r.path.size() << " nodes, "
            << TableReport::cell(r.path_seconds, 2) << " s end-to-end, "
            << TableReport::cell(r.path_wait_seconds, 2)
            << " s of scheduler wait between nodes\n";
  TableReport blocking({"blocking eval", "busy s", "share of path"});
  for (const auto& [id, busy] : r.top_blocking)
    blocking.add_row({std::to_string(id), TableReport::cell(busy, 2),
                      TableReport::cell_pct(r.path_seconds > 0.0 ? busy / r.path_seconds
                                                                 : 0.0)});
  blocking.print(std::cout);

  std::cout << '\n';
  TableReport what_if({"what-if", "removes", "est. makespan", "est. speedup"});
  for (const prof::WhatIf& w : r.what_ifs)
    what_if.add_row({w.name, TableReport::cell(w.removed_seconds, 2) + " s",
                     TableReport::cell(w.est_makespan, 2) + " s",
                     TableReport::cell(w.est_speedup, 3) + "x"});
  what_if.print(std::cout);
  std::cout << "\nReading: \"bound_by parent\" hops mean transfer lineage gates the\n"
               "schedule (the paper's selective-transfer cost); a large\n"
               "zero_cost_checkpointing speedup reproduces the Fig. 10/11 claim\n"
               "that checkpoint I/O, not training, limits scaling.  Estimates are\n"
               "lower bounds: removing a cost never re-orders the schedule here.\n";
  return share_ok;
}

}  // namespace

int main(int argc, char** argv) try {
  bool json_out = false;
  std::vector<std::string> paths;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--json") json_out = true;
    else paths.push_back(arg);
  }

  std::vector<std::pair<std::string, prof::CriticalPathReport>> reports;
  if (paths.empty()) {
    std::cout << "No trace given; running an 80-candidate LCS search on MNIST...\n";
    const AppConfig app = make_app(AppId::kMnist, 23);
    NasRunConfig cfg;
    cfg.mode = TransferMode::kLCS;
    cfg.n_evals = 80;
    cfg.seed = 23;
    cfg.cluster.num_workers = 8;
    const NasRun run = run_nas(app, cfg);
    reports.emplace_back("in-memory run",
                         prof::analyze_critical_path(critical_path_input(run.trace)));
  } else {
    for (const std::string& path : paths)
      reports.emplace_back(path, prof::analyze_critical_path(load_input(path)));
  }

  if (json_out) {
    // Machine mode: emit only the JSON report(s), one per line, but keep
    // the phase-share gate so a broken decomposition still fails the run.
    bool ok = true;
    for (const auto& [label, report] : reports) {
      std::cout << prof::critical_path_json(report) << "\n";
      if (report.worker_seconds > 0.0)
        ok = ok && std::abs(report.share_sum - 1.0) <= 0.01;
    }
    return ok ? 0 : 1;
  }

  bool all_ok = true;
  for (const auto& [label, report] : reports)
    all_ok = print_report(label, report) && all_ok;

  // With both a span trace and a CSV of the same run, the two independent
  // reconstructions must agree on the train/checkpoint split.
  if (reports.size() == 2) {
    const auto share = [](const prof::CriticalPathReport& r, const char* phase) {
      const auto it = r.phase_seconds.find(phase);
      return it == r.phase_seconds.end() || r.worker_seconds <= 0.0
                 ? 0.0
                 : it->second / r.worker_seconds;
    };
    std::cout << "\ncross-check (|spans - csv| share):\n";
    for (const char* phase : {"train", "checkpoint"}) {
      const double d =
          std::abs(share(reports[0].second, phase) - share(reports[1].second, phase));
      const bool ok = d <= 0.02;
      std::cout << "  " << phase << " : " << TableReport::cell_pct(d) << " ("
                << (ok ? "PASS" : "FAIL") << ")\n";
      all_ok = all_ok && ok;
    }
  }
  return all_ok ? 0 : 1;
} catch (const std::exception& e) {
  std::cerr << "error: " << e.what() << "\n";
  return 1;
}
